"""Command-line interface: ``python -m repro <command>``.

The main entry points:

``run``
    Integrate a scaled paper disk with a chosen force backend and
    print run statistics (block counts, energy error, Tflops model for
    the GRAPE backend).  ``--trace-out`` / ``--metrics-out`` enable the
    :mod:`repro.obs` instrumentation and export a Chrome-trace JSON /
    Prometheus text file; ``--profile`` prints the phase-profiler
    hotspot table after the run; ``report --metrics`` renders the
    paper-style time breakdown from the exposition file.

``perf``
    Evaluate the GRAPE-6 timing model for a given machine shape,
    particle count and block size — the PERF-TFLOPS analysis without
    running a simulation.  Its subcommands read the bench-history
    store: ``perf diff`` (latest vs previous record, or two explicit
    documents), ``perf trend`` (trajectory per entry), ``perf gate``
    (committed ``BENCH_*.json`` baselines vs latest history; exits 1 on
    a statistically supported slowdown).

``top``
    Live view of a managed run directory: tails ``run.jsonl`` and
    redraws progress, event counts and health events until the final
    record lands (``--once`` for a single snapshot).

``info``
    Print the paper's constants and the machine configurations.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SC2002 GRAPE-6 planetesimal simulation reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="integrate a scaled paper disk")
    p_run.add_argument("--n", type=int, default=256, help="planetesimal count")
    p_run.add_argument("--t-end", type=float, default=20.0, help="end time [code units]")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--eta", type=float, default=0.02, help="Aarseth accuracy parameter")
    p_run.add_argument("--dt-max", type=float, default=1.0, help="largest block step")
    p_run.add_argument(
        "--backend", choices=("host", "grape", "tree", "hybrid", "spmd"),
        default="host", help="force engine",
    )
    p_run.add_argument("--eps", type=float, default=0.008, help="softening [AU]")
    p_run.add_argument(
        "--ranks", type=int, default=2,
        help="SPMD gang size (spmd backend)",
    )
    p_run.add_argument(
        "--spmd-mode", choices=("proc", "vm", "serial"), default="proc",
        help="spmd execution mode: worker processes, in-process "
        "scheduler, or single-process baseline",
    )
    p_run.add_argument(
        "--theta", type=float, default=0.5,
        help="tree opening angle (tree and hybrid backends)",
    )
    p_run.add_argument(
        "--r-neighbour", type=float, default=0.05,
        help="default neighbour-sphere radius [AU] (hybrid backend)",
    )
    p_run.add_argument(
        "--tree-walk", choices=("grouped", "persink"), default=None,
        help="tree-walk strategy (tree and hybrid backends; default "
        "REPRO_TREE_WALK or grouped)",
    )
    p_run.add_argument(
        "--n-crit", type=int, default=32,
        help="grouped-walk sink-group size target",
    )
    p_run.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome-trace/Perfetto JSON of the run (enables tracing)",
    )
    p_run.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write Prometheus text exposition of run metrics (enables metrics)",
    )
    p_run.add_argument(
        "--run-dir", metavar="DIR", default=None,
        help="managed production run: snapshots, run log, checkpoints in DIR",
    )
    p_run.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="T",
        help="snapshot cadence in simulation time (managed runs)",
    )
    p_run.add_argument(
        "--diagnostics-interval", type=float, default=None, metavar="T",
        help="energy-accounting cadence in simulation time (managed runs)",
    )
    p_run.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="BLOCKS",
        help="checkpoint every BLOCKS block steps (managed runs)",
    )
    p_run.add_argument(
        "--resume", metavar="DIR", default=None,
        help="continue a managed run from the latest checkpoint in DIR",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="print the phase-profiler hotspot table after the run "
             "(enables tracing)",
    )

    p_perf = sub.add_parser(
        "perf",
        help="evaluate the GRAPE-6 timing model / query bench history",
    )
    p_perf.add_argument("--n", type=int, default=1_800_000, help="total particles")
    p_perf.add_argument("--block", type=int, default=3000, help="active block size")
    p_perf.add_argument(
        "--config", choices=("board", "node", "cluster", "full"), default="full",
        help="machine shape",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command")

    def _history_flags(p, threshold=True):
        p.add_argument(
            "--history", metavar="DIR", default="benchmarks/results/history",
            help="bench-history store root",
        )
        p.add_argument(
            "--benchmark", metavar="NAME", default=None,
            help="restrict to one benchmark (default: all with history)",
        )
        if threshold:
            p.add_argument(
                "--threshold", type=float, default=0.10, metavar="FRAC",
                help="fractional slowdown that counts as a regression",
            )

    p_diff = perf_sub.add_parser(
        "diff", help="compare the two newest history records per benchmark"
    )
    _history_flags(p_diff)
    p_diff.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="explicit baseline document (with --current: skip the history)",
    )
    p_diff.add_argument(
        "--current", metavar="PATH", default=None,
        help="explicit current document (with --baseline)",
    )

    p_trend = perf_sub.add_parser(
        "trend", help="per-entry time trajectory across the history"
    )
    _history_flags(p_trend, threshold=False)

    p_gate = perf_sub.add_parser(
        "gate",
        help="fail (exit 1) when the latest history regresses vs the "
             "committed BENCH_*.json baselines",
    )
    _history_flags(p_gate)
    p_gate.add_argument(
        "--baseline", metavar="PATH", action="append", default=None,
        help="baseline document(s) (default: ./BENCH_*.json); repeatable",
    )
    p_gate.add_argument(
        "--current", metavar="PATH", default=None,
        help="explicit current document (default: latest history record)",
    )

    p_top = sub.add_parser(
        "top", help="live view of a managed run directory (run.jsonl)"
    )
    p_top.add_argument(
        "directory", help="run directory (or a run.jsonl path directly)"
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh cadence",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (no polling)",
    )

    p_serve = sub.add_parser(
        "serve", help="multi-tenant campaign service (repro.serve)"
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)

    p_camp = serve_sub.add_parser(
        "run-campaign",
        help="execute a declarative campaign spec on a worker pool",
    )
    p_camp.add_argument(
        "--spec", metavar="FILE", required=True,
        help="campaign spec JSON ({defaults: {...}, jobs: [{tenant, ...}]})",
    )
    p_camp.add_argument(
        "--dir", dest="campaign_dir", metavar="DIR", required=True,
        help="campaign directory (journal + per-job run dirs); reusing a "
             "directory recovers its interrupted campaign",
    )
    p_camp.add_argument("--workers", type=int, default=4,
                        help="worker-pool size (processes)")
    p_camp.add_argument("--max-attempts", type=int, default=3,
                        help="attempts per job before dead-lettering")
    p_camp.add_argument("--retry-base-delay", type=float, default=0.5,
                        metavar="SECONDS", help="first retry backoff")
    p_camp.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS", help="wall-clock cap per attempt")
    p_camp.add_argument("--lease", type=float, default=30.0, metavar="SECONDS",
                        help="heartbeat lease; a staler worker is killed")
    p_camp.add_argument("--capacity", type=int, default=None,
                        help="admission tokens (default 64 x workers)")
    p_camp.add_argument("--per-tenant-capacity", type=int, default=None,
                        help="admission tokens per tenant")
    p_camp.add_argument("--max-seconds", type=float, default=None,
                        help="abort if the campaign has not drained by then")
    p_camp.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write Prometheus text exposition of the serve.* metrics",
    )

    p_status = serve_sub.add_parser(
        "status", help="summarise a campaign directory's job journal"
    )
    p_status.add_argument(
        "directory", help="campaign directory (or a journal.jsonl path)"
    )

    sub.add_parser("info", help="print paper constants and machine shapes")

    p_st = sub.add_parser("selftest", help="run the GRAPE-6 hardware self-test")
    p_st.add_argument(
        "--config", choices=("board", "node", "cluster", "full"), default="node",
    )
    p_st.add_argument("--precision", action="store_true",
                      help="test the reduced-precision pipeline emulation")

    p_rep = sub.add_parser(
        "report", help="print the collected benchmark result tables"
    )
    p_rep.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory of tables written by pytest benchmarks",
    )
    p_rep.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="render the paper-style time breakdown from a metrics file "
             "written by `repro run --metrics-out`",
    )
    p_rep.add_argument(
        "--trace", metavar="PATH", default=None,
        help="render the phase-profile top table from an exported trace "
             "(spans JSONL or Chrome-trace JSON; format is sniffed)",
    )
    p_rep.add_argument(
        "--run-log", metavar="PATH", default=None,
        help="render the health events of a managed run "
             "(a run.jsonl file or its run directory)",
    )
    return parser


def _config_for(name: str):
    from .grape import Grape6Config

    return {
        "board": Grape6Config.single_board,
        "node": Grape6Config.single_node,
        "cluster": Grape6Config.single_cluster,
        "full": Grape6Config.paper_full_system,
    }[name]()


def _build_backend(name: str, eps: float, theta: float = 0.5,
                   r_neighbour: float = 0.05, ranks: int = 2,
                   spmd_mode: str = "proc", tree_walk: str | None = None,
                   n_crit: int = 32):
    """Construct a force backend; returns ``(backend, machine_or_None)``."""
    from .baselines import TreeBackend
    from .core import HostDirectBackend
    from .grape import Grape6Backend, Grape6Config, Grape6Machine

    if name == "host":
        return HostDirectBackend(eps=eps), None
    if name == "tree":
        return TreeBackend(eps=eps, theta=theta, walk=tree_walk,
                           n_crit=n_crit), None
    if name == "hybrid":
        from .hybrid import HybridBackend

        return HybridBackend(eps=eps, theta=theta, r_neighbour=r_neighbour,
                             walk=tree_walk, n_crit=n_crit), None
    if name == "spmd":
        from .parallel import SpmdBackend

        return SpmdBackend(eps=eps, n_ranks=ranks, mode=spmd_mode), None
    machine = Grape6Machine(Grape6Config.paper_full_system(), eps=eps)
    return Grape6Backend(machine), machine


def _cmd_run_managed(args) -> int:
    from .core import KeplerField, Simulation, TimestepParams
    from .planetesimal import PlanetesimalDiskConfig, build_disk_system
    from .runio import ProductionRun

    backend, _ = _build_backend(
        args.backend, args.eps, theta=args.theta,
        r_neighbour=args.r_neighbour, ranks=args.ranks,
        spmd_mode=args.spmd_mode, tree_walk=args.tree_walk,
        n_crit=args.n_crit,
    )
    system = build_disk_system(
        PlanetesimalDiskConfig(n_planetesimals=args.n, seed=args.seed)
    )
    obs = None
    if args.profile or args.trace_out or args.metrics_out:
        from .obs import Observability

        obs = Observability()
    sim = Simulation(
        system,
        backend,
        external_field=KeplerField(),
        timestep_params=TimestepParams(
            eta=args.eta, eta_start=args.eta / 2.0, dt_max=args.dt_max
        ),
        obs=obs,
    )
    run = ProductionRun(
        sim,
        args.run_dir,
        snapshot_interval=args.snapshot_interval,
        diagnostics_interval=args.diagnostics_interval,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_metadata={
            "backend": args.backend,
            "n": args.n,
            "seed": args.seed,
            "eta": args.eta,
            "dt_max": args.dt_max,
            "eps": args.eps,
            "theta": args.theta,
            "r_neighbour": args.r_neighbour,
            "ranks": args.ranks,
            "spmd_mode": args.spmd_mode,
            "tree_walk": args.tree_walk,
            "n_crit": args.n_crit,
        },
        run_id=f"disk-n{args.n}",
    )
    report = run.execute(args.t_end)
    print(report.summary())
    return _emit_run_observability(args, obs)


def _cmd_run_resume(args) -> int:
    from pathlib import Path

    from .core import KeplerField, TimestepParams
    from .errors import CheckpointError
    from .resilience import CheckpointManager
    from .runio import ProductionRun

    directory = Path(args.resume)
    ckpt_dir = directory / "checkpoints"
    if not ckpt_dir.is_dir() or not any(ckpt_dir.glob("ckpt_*.npz")):
        raise CheckpointError(
            f"no checkpoint found in {ckpt_dir} — start the "
            "run with `repro run --run-dir DIR --checkpoint-interval N` first"
        )
    manager = CheckpointManager(ckpt_dir)
    # fallback-aware: a truncated/corrupt newest checkpoint is skipped
    _, state = manager.load_latest()
    path = manager.loaded_path
    cfg = state.get("config") or {}
    backend, _ = _build_backend(
        cfg.get("backend", args.backend), cfg.get("eps", args.eps),
        theta=cfg.get("theta", args.theta),
        r_neighbour=cfg.get("r_neighbour", args.r_neighbour),
        ranks=cfg.get("ranks", args.ranks),
        spmd_mode=cfg.get("spmd_mode", args.spmd_mode),
        tree_walk=cfg.get("tree_walk", args.tree_walk),
        n_crit=cfg.get("n_crit", args.n_crit),
    )
    eta = cfg.get("eta", args.eta)
    run = ProductionRun.resume(
        directory,
        backend,
        external_field=KeplerField(),
        timestep_params=TimestepParams(
            eta=eta, eta_start=eta / 2.0, dt_max=cfg.get("dt_max", args.dt_max)
        ),
    )
    print(f"resuming from {path.name} at T = {run.sim.time:g}")
    report = run.execute()
    print(report.summary())
    return 0


def _emit_run_observability(args, obs) -> int:
    """Shared ``run`` tail: export trace/metrics files, print the profile."""
    if obs is None:
        return 0
    try:
        if args.trace_out:
            path = obs.export_chrome_trace(args.trace_out)
            print(f"trace written:    {path} "
                  f"({len(obs.tracer.spans)} spans; load in chrome://tracing)")
        if args.metrics_out:
            path = obs.export_prometheus(args.metrics_out)
            print(f"metrics written:  {path} ({len(obs.metrics)} series)")
    except OSError as exc:
        print(f"error: cannot write observability output: {exc}")
        return 1
    breakdown = obs.render_time_breakdown()
    if breakdown:
        print()
        print(breakdown)
    if args.profile:
        from .obs import profile_spans

        profile = profile_spans(obs.tracer)
        text = profile.render()
        print()
        print(text if text else "no spans recorded — nothing to profile")
    return 0


def _cmd_run(args) -> int:
    from .perf import run_scaled_disk

    if args.resume:
        return _cmd_run_resume(args)
    if args.run_dir:
        return _cmd_run_managed(args)

    backend, machine = _build_backend(
        args.backend, args.eps, theta=args.theta,
        r_neighbour=args.r_neighbour, ranks=args.ranks,
        spmd_mode=args.spmd_mode, tree_walk=args.tree_walk,
        n_crit=args.n_crit,
    )

    obs = None
    if args.trace_out or args.metrics_out or args.profile:
        from .obs import Observability

        obs = Observability()

    res = run_scaled_disk(
        backend, n=args.n, t_end=args.t_end, seed=args.seed,
        eta=args.eta, dt_max=args.dt_max, obs=obs,
    )
    print(f"particles:        {res.n}")
    print(f"integrated to:    T = {res.t_end:g}")
    print(f"block steps:      {res.block_steps}")
    print(f"particle steps:   {res.particle_steps}")
    print(f"mean block size:  {res.mean_block:.1f}")
    print(f"interactions:     {res.interactions:,}")
    print(f"energy error:     {res.energy_error:.3e}")
    print(f"python wall:      {res.wall_seconds:.2f} s "
          f"({res.interactions_per_second:.3g} interactions/s)")
    if machine is not None:
        print(f"GRAPE model:      {machine.totals.total_seconds:.4f} s, "
              f"{machine.achieved_flops() / 1e12:.3f} Tflops "
              f"({machine.efficiency():.1%} of peak)")
    return _emit_run_observability(args, obs)


def _load_bench_doc(path):
    """One benchmark JSON document; SnapshotError on missing/corrupt."""
    import json
    from pathlib import Path

    from .errors import SnapshotError

    p = Path(path)
    if not p.exists():
        raise SnapshotError(f"benchmark document not found: {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"corrupt benchmark document {p}: {exc}") from exc
    if not isinstance(doc, dict):
        raise SnapshotError(f"{p} is not a benchmark document (want an object)")
    return doc


def _history_names(hist, args) -> list[str]:
    return [args.benchmark] if args.benchmark else hist.benchmarks()


def _cmd_perf_diff(args) -> int:
    from .errors import ConfigurationError
    from .obs import BenchHistory, compare_documents, render_comparison

    if bool(args.baseline) != bool(args.current):
        raise ConfigurationError(
            "--baseline and --current must be given together"
        )
    regressions = 0
    if args.baseline:
        result = compare_documents(
            _load_bench_doc(args.baseline), _load_bench_doc(args.current),
            threshold=args.threshold,
        )
        print(render_comparison(result) or "no comparable entries")
        regressions += len(result.regressions)
    else:
        hist = BenchHistory(args.history)
        names = _history_names(hist, args)
        if not names:
            print(f"no benchmark history under {hist.root} — run the "
                  "benchmarks first (pytest benchmarks/ --benchmark-only)")
            return 0
        for name in names:
            records = hist.records(name)
            if len(records) < 2:
                print(f"{name}: {len(records)} history record(s) — "
                      "need two to diff")
                continue
            result = compare_documents(
                records[-2], records[-1], threshold=args.threshold
            )
            print(render_comparison(result) or f"{name}: no comparable entries")
            print()
            regressions += len(result.regressions)
    if regressions:
        print(f"{regressions} significant regression(s) found")
        return 1
    return 0


def _cmd_perf_trend(args) -> int:
    from .obs import BenchHistory, render_trend

    hist = BenchHistory(args.history)
    names = _history_names(hist, args)
    if not names:
        print(f"no benchmark history under {hist.root}")
        return 0
    for name in names:
        records = hist.records(name)
        text = render_trend(records, name)
        print(text if text else f"{name}: no records with timed entries")
        print()
    return 0


def _cmd_perf_gate(args) -> int:
    from pathlib import Path

    from .obs import BenchHistory, compare_documents, render_comparison

    baselines = args.baseline or [
        str(p) for p in sorted(Path(".").glob("BENCH_*.json"))
    ]
    if not baselines:
        print("gate: no BENCH_*.json baselines found — nothing to check")
        return 0
    hist = BenchHistory(args.history)
    failed = checked = 0
    for path in baselines:
        base = _load_bench_doc(path)
        name = base.get("benchmark")
        if args.benchmark and name != args.benchmark:
            continue
        if args.current:
            current = _load_bench_doc(args.current)
            if current.get("benchmark") != name:
                continue
        else:
            current = hist.latest(name) if name else None
        if current is None:
            print(f"gate: no history record for {name!r} — skipped (advisory)")
            continue
        checked += 1
        result = compare_documents(base, current, threshold=args.threshold)
        print(render_comparison(result) or f"{name}: no comparable entries")
        print()
        if result.regressions:
            failed += 1
    if failed:
        print(f"gate FAILED: {failed} of {checked} benchmark(s) regressed "
              f"beyond {args.threshold:.0%}")
        return 1
    print(f"gate passed: {checked} benchmark(s) checked")
    return 0


def _cmd_perf(args) -> int:
    sub = getattr(args, "perf_command", None)
    if sub == "diff":
        return _cmd_perf_diff(args)
    if sub == "trend":
        return _cmd_perf_trend(args)
    if sub == "gate":
        return _cmd_perf_gate(args)

    from .grape import Grape6TimingModel

    cfg = _config_for(args.config)
    model = Grape6TimingModel(cfg)
    step = model.block_step(args.block, args.n)
    useful = args.block * args.n * 57
    print(f"machine:          {cfg.total_chips} chips, "
          f"{cfg.peak_flops / 1e12:.2f} Tflops peak")
    print(f"workload:         block {args.block} of N = {args.n:,}")
    print(f"step time:        {step.total * 1e3:.3f} ms")
    for name in ("host", "pci", "lvds", "pipe", "gbe"):
        val = getattr(step, name)
        print(f"  {name:<5}           {val * 1e3:8.3f} ms ({val / step.total:6.1%})")
    print(f"sustained:        {useful / step.total / 1e12:.2f} Tflops "
          f"({model.efficiency(args.block, args.n):.1%} of peak)")
    return 0


def _cmd_info(_args) -> int:
    from . import constants as c
    from .grape import Grape6Config

    print("Paper: Makino, Kokubo, Fukushige & Daisaka, SC 2002")
    print(f"  N planetesimals:    {c.PAPER_N_PLANETESIMALS:,} (+2 protoplanets)")
    print(f"  ring:               {c.PAPER_RING_INNER_AU:g}-{c.PAPER_RING_OUTER_AU:g} AU, "
          f"Sigma ~ r^{c.PAPER_SURFACE_DENSITY_EXPONENT:g}")
    print(f"  mass function:      N(m) ~ m^{c.PAPER_MASS_EXPONENT:g}")
    print(f"  softening:          {c.PAPER_SOFTENING_AU:g} AU")
    print(f"  achieved/peak:      {c.PAPER_ACHIEVED_TFLOPS} / {c.PAPER_PEAK_TFLOPS} Tflops")
    print(f"  ops/interaction:    {c.FLOPS_PER_INTERACTION} "
          f"({c.FLOPS_PER_FORCE} force + {c.FLOPS_PER_JERK} jerk)")
    print("\nMachine shapes:")
    for name in ("board", "node", "cluster", "full"):
        cfg = _config_for(name)
        print(f"  {name:<8} {cfg.total_chips:>5} chips  "
              f"{cfg.peak_flops / 1e12:8.2f} Tflops peak  "
              f"{cfg.n_hosts:>3} host(s)")
    return 0


def _cmd_selftest(args) -> int:
    from .grape import Grape6Machine, self_test

    cfg = _config_for(args.config)
    machine = Grape6Machine(
        cfg, eps=0.008, mode="hierarchy", emulate_precision=args.precision
    )
    tol = 1e-2 if args.precision else 1e-10
    report = self_test(machine, rel_tol=tol)
    print(report.summary())
    for c in report.failures():
        print(f"  FAIL chip c{c.cluster}.n{c.node}.b{c.board}.{c.chip}: "
              f"max rel error {c.max_rel_error:.2e}")
    return 0 if report.all_ok else 1


def _cmd_report(args) -> int:
    from pathlib import Path

    printed_any = False
    if args.metrics:
        # missing/truncated exposition raises SnapshotError -> exit 2
        from .obs import parse_prometheus, render_time_breakdown

        metrics = parse_prometheus(args.metrics)
        breakdown = render_time_breakdown(metrics)
        if breakdown:
            print(breakdown)
            print()
            printed_any = True
        else:
            print(f"no GRAPE time breakdown in {args.metrics} "
                  "(run with --backend grape --metrics-out)")

    if args.trace:
        from .obs import profile_trace_file

        profile = profile_trace_file(args.trace)
        text = profile.render()
        if text:
            print(text)
            print()
            printed_any = True
        else:
            print(f"no spans in {args.trace} — nothing to profile")

    if args.run_log:
        from .obs import render_health_events
        from .runio.runlog import read_run_log

        log_path = Path(args.run_log)
        if log_path.is_dir():
            log_path = log_path / "run.jsonl"
        records = read_run_log(log_path)
        health = [r for r in records if r.get("kind") == "health"]
        text = render_health_events(health)
        if text:
            print(text)
            print()
        else:
            print(f"no health events in {log_path} — clean run")
        printed_any = True

    results = Path(args.results_dir)
    files = sorted(results.glob("*.txt"))
    if not files:
        if printed_any:
            return 0
        print(f"no result tables in {results}; "
              "run `pytest benchmarks/ --benchmark-only` first")
        return 1
    for f in files:
        print(f.read_text().rstrip())
        print()
    return 0


def _render_top(records, directory) -> str:
    """One ``repro top`` frame from the run-log records."""
    header = records[0] if records and records[0].get("kind") == "header" else {}
    samples = [r for r in records if r.get("kind") == "sample"]
    counts: dict[str, int] = {}
    for r in records:
        kind = r.get("kind", "?")
        if kind not in ("header", "sample"):
            counts[kind] = counts.get(kind, 0) + 1
    lines = [
        f"run {header.get('run_id', '?')} in {directory} — "
        f"n={header.get('n', '?')} t_end={header.get('t_end', '?')}"
    ]
    if samples:
        s = samples[-1]
        done = bool(s.get("note") == "final")
        err = s.get("energy_error")
        lines.append(
            f"  t={s.get('t', 0.0):g}  blocks={s.get('block_steps', 0):,}  "
            f"particle steps={s.get('particle_steps', 0):,}  "
            f"n={s.get('n', '?')}  mean block={s.get('mean_block', 0.0):.1f}"
        )
        if err is not None:
            lines.append(f"  |dE/E| = {err:.3e}"
                         + ("  [run complete]" if done else ""))
    else:
        lines.append("  no samples yet")
    if counts:
        lines.append(
            "  events: "
            + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
    health = [r for r in records if r.get("kind") == "health"]
    if health:
        from .obs import render_health_events

        lines.append("")
        lines.append(render_health_events(health, limit=8))
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time as _time
    from pathlib import Path

    from .errors import SnapshotError
    from .runio.runlog import read_run_log

    target = Path(args.directory)
    log_path = target if target.suffix == ".jsonl" else target / "run.jsonl"
    while True:
        try:
            records = read_run_log(log_path)
        except SnapshotError:
            if args.once:
                raise
            records = []
        if records:
            if sys.stdout.isatty() and not args.once:  # pragma: no cover
                print("\x1b[2J\x1b[H", end="")
            print(_render_top(records, target))
            samples = [r for r in records if r.get("kind") == "sample"]
            if samples and samples[-1].get("note") == "final":
                return 0
        else:
            print(f"waiting for {log_path} ...")
        if args.once:
            return 0
        _time.sleep(args.interval)  # pragma: no cover - interactive loop


def _cmd_serve_campaign(args) -> int:
    from .obs import Observability
    from .serve import CampaignService, RetryPolicy, load_campaign_spec

    jobs = load_campaign_spec(args.spec)
    obs = Observability() if args.metrics_out else None
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        base_delay=args.retry_base_delay,
        job_timeout=args.job_timeout,
    )
    with CampaignService(
        args.campaign_dir,
        workers=args.workers,
        retry=retry,
        capacity=args.capacity,
        per_tenant_capacity=args.per_tenant_capacity,
        lease_seconds=args.lease,
        obs=obs,
    ) as service:
        for tenant, scenario in jobs:
            service.submit(tenant, scenario)
        report = service.run(max_seconds=args.max_seconds)
    print(report.summary())
    if args.metrics_out:
        path = obs.export_prometheus(args.metrics_out)
        print(f"metrics written:  {path} ({len(obs.metrics)} series)")
    # dead-lettered / rejected jobs are an orderly outcome but still a
    # failed campaign from the caller's point of view
    return 1 if (report.dead_lettered or report.lost) else 0


def _cmd_serve_status(args) -> int:
    from pathlib import Path

    from .serve import render_status, scan_journal

    target = Path(args.directory)
    journal = target if target.suffix == ".jsonl" else target / "journal.jsonl"
    scan = scan_journal(journal)
    print(render_status(scan, directory=str(target)))
    return 0


def _cmd_serve(args) -> int:
    if args.serve_command == "run-campaign":
        return _cmd_serve_campaign(args)
    return _cmd_serve_status(args)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Library failures (snapshot/checkpoint problems, GRAPE hardware
    errors, comm-model errors, bad configuration values such as a
    negative ``--theta``) exit with code 2 and a one-line message on
    stderr instead of a traceback.
    """
    from .errors import (
        CommError,
        ConfigurationError,
        GrapeError,
        ServeError,
        SnapshotError,
    )

    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "perf": _cmd_perf,
        "info": _cmd_info,
        "selftest": _cmd_selftest,
        "report": _cmd_report,
        "top": _cmd_top,
        "serve": _cmd_serve,
    }[args.command]
    try:
        return handler(args)
    except (SnapshotError, GrapeError, CommError, ConfigurationError,
            ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
