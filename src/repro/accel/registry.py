"""Kernel registry and shape-bucketed dispatch for the accel engine.

Every force-kernel *op* (``acc_jerk``, ``acc_only``, ``potential``,
``spline``, ``acc_jerk_active``, ``acc_jerk_masked``) has one or more registered
implementations — at minimum the ``reference`` NumPy kernel and a
workspace-backed ``accel``/``fused`` twin.  :func:`select_kernel` picks
one per *shape bucket* (both dimensions rounded up to powers of two):
by default a deterministic size heuristic, or — when the engine is
built with ``autotune=True`` (``REPRO_KERNEL_AUTOTUNE=1``) — a timing
trial whose winner is cached per bucket by the engine.

The registry is also the contract surface the repo lints against:
``tools/check_kernel_registry.py`` fails when a registered
``op/name`` pair has no equivalence test or no benchmark entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .workspace import bucket_size

__all__ = [
    "KernelSpec",
    "REGISTRY",
    "register_kernel",
    "all_kernels",
    "kernels_for",
    "select_kernel",
    "shape_bucket",
]

#: Ops and the non-reference implementation the heuristic prefers.
PREFERRED = {
    "acc_jerk": "accel",
    "acc_only": "accel",
    "potential": "accel",
    "spline": "accel",
    "acc_jerk_active": "fused",
    "acc_jerk_masked": "accel",
    "node_force": "accel",
}

#: Fallback pair-count threshold when no engine config is at hand.
DEFAULT_MIN_PAIRS = 4096


@dataclass(frozen=True)
class KernelSpec:
    """One registered kernel implementation.

    ``runner`` is called as ``runner(engine, *args, **kwargs)`` with the
    op's normalised argument tuple; ``deterministic`` records whether
    the implementation honours the engine's bit-reproducibility
    contract (all built-ins do — only the timing autotuner can
    introduce cross-process divergence).
    """

    op: str
    name: str
    runner: object = field(compare=False, repr=False)
    deterministic: bool = True
    doc: str = ""

    @property
    def key(self) -> str:
        return f"{self.op}/{self.name}"


#: ``(op, name) -> KernelSpec``; insertion order is trial order.
REGISTRY: dict[tuple[str, str], KernelSpec] = {}


def register_kernel(op: str, name: str, runner, deterministic: bool = True,
                    doc: str = "") -> KernelSpec:
    """Register (or replace) one kernel implementation."""
    if op not in PREFERRED:
        raise ValueError(f"unknown kernel op {op!r} (known: {sorted(PREFERRED)})")
    spec = KernelSpec(op=op, name=name, runner=runner,
                      deterministic=deterministic, doc=doc)
    REGISTRY[(op, name)] = spec
    return spec


def all_kernels() -> list[KernelSpec]:
    """Every registered kernel, registration order."""
    return list(REGISTRY.values())


def kernels_for(op: str) -> list[KernelSpec]:
    """Registered implementations of one op, registration order."""
    specs = [s for (o, _), s in REGISTRY.items() if o == op]
    if not specs:
        raise KeyError(f"no kernels registered for op {op!r}")
    return specs


def shape_bucket(n: int) -> int:
    """Dispatch bucket for one shape dimension (next power of two)."""
    return bucket_size(n, floor=1)


def select_kernel(op: str, n_i: int, n_j: int, engine=None) -> KernelSpec:
    """The kernel to run for ``op`` at shape ``(n_i, n_j)``.

    Consults the engine's per-bucket cache first (which is where timing
    autotune results live); otherwise applies the deterministic size
    heuristic: below ``accel_min_pairs`` interactions the reference
    kernel's single-shot broadcasting is cheaper than tile bookkeeping,
    above it the workspace kernels win.
    """
    if engine is not None:
        cached = engine.cached_pick(op, n_i, n_j)
        if cached is not None:
            return cached
    min_pairs = (
        engine.config.accel_min_pairs if engine is not None else DEFAULT_MIN_PAIRS
    )
    name = "reference" if n_i * n_j < min_pairs else PREFERRED[op]
    spec = REGISTRY.get((op, name))
    if spec is None:  # partial registry (tests) — fall back to anything
        spec = kernels_for(op)[0]
    return spec
