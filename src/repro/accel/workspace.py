"""Preallocated, shape-bucketed tile buffers for the force kernels.

The reference kernels in :mod:`repro.core.forces` materialise every
``(n_i, n_j)`` interaction tile (``dr``, ``dv``, ``r2``, …) with fresh
allocations on every call — roughly ten large temporaries per block
step, re-acquired from the allocator thousands of times per simulated
orbit.  GRAPE-6 does the opposite: the pipeline's working set is a
fixed set of registers and the j-memory, sized once at power-on.

:class:`KernelWorkspace` is the software analogue.  It owns one set of
tile buffers per *shape bucket* (dimensions rounded up to the next
power of two, so a handful of buckets serves every block size the
scheduler produces) and hands out **views** trimmed to the exact shape
requested.  After warm-up the hot loop performs zero heap allocations:
every ufunc and einsum in :mod:`repro.accel.kernels` runs in its
``out=`` form against these buffers.

One workspace is private to one thread.  The engine keeps a
thread-local workspace per executor worker plus one for the calling
thread, so tile buffers are never shared across threads; the only
cross-thread arrays are the per-chunk partial-sum slabs
(:meth:`KernelWorkspace.partials`), which are written by disjoint
chunk indices and reduced by the caller in fixed order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TileBuffers", "TileView", "KernelWorkspace", "bucket_size"]


def bucket_size(n: int, floor: int = 8) -> int:
    """Round ``n`` up to the next power of two (at least ``floor``)."""
    n = max(int(n), 1)
    b = 1 << (n - 1).bit_length()
    return max(b, floor)


class TileBuffers:
    """One bucket's worth of tile storage (allocated once).

    ``rows x cols`` is the bucket shape; :meth:`view` trims to the
    live tile.  Buffer roles (all float64):

    ``dr, dv``
        ``(rows, cols, 3)`` separation / relative-velocity tiles.
    ``r2, rv, s, mr3, w``
        ``(rows, cols)`` scalar fields: softened distance^2, r.v,
        scratch (r^3, spline u, …), mass/r^3, jerk weight.
    ``vec1, vec2``
        ``(rows, 3)`` einsum landing pads for force/jerk partials.
    ``row1``
        ``(rows,)`` scalar landing pad (potential partials).
    """

    __slots__ = (
        "rows", "cols", "dr", "dv", "r2", "rv", "s", "mr3", "w",
        "vec1", "vec2", "row1",
    )

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.dr = np.empty((rows, cols, 3))
        self.dv = np.empty((rows, cols, 3))
        self.r2 = np.empty((rows, cols))
        self.rv = np.empty((rows, cols))
        self.s = np.empty((rows, cols))
        self.mr3 = np.empty((rows, cols))
        self.w = np.empty((rows, cols))
        self.vec1 = np.empty((rows, 3))
        self.vec2 = np.empty((rows, 3))
        self.row1 = np.empty((rows,))

    @property
    def nbytes(self) -> int:
        return sum(
            getattr(self, name).nbytes
            for name in self.__slots__
            if isinstance(getattr(self, name), np.ndarray)
        )

    def view(self, rows: int, cols: int) -> "TileView":
        if rows > self.rows or cols > self.cols:
            raise ValueError(
                f"tile ({rows}, {cols}) exceeds bucket ({self.rows}, {self.cols})"
            )
        return TileView(self, rows, cols)


class TileView:
    """Exact-shape views into one :class:`TileBuffers` bucket."""

    __slots__ = ("dr", "dv", "r2", "rv", "s", "mr3", "w", "vec1", "vec2", "row1")

    def __init__(self, buf: TileBuffers, rows: int, cols: int) -> None:
        self.dr = buf.dr[:rows, :cols]
        self.dv = buf.dv[:rows, :cols]
        self.r2 = buf.r2[:rows, :cols]
        self.rv = buf.rv[:rows, :cols]
        self.s = buf.s[:rows, :cols]
        self.mr3 = buf.mr3[:rows, :cols]
        self.w = buf.w[:rows, :cols]
        self.vec1 = buf.vec1[:rows]
        self.vec2 = buf.vec2[:rows]
        self.row1 = buf.row1[:rows]


class KernelWorkspace:
    """Creates-or-reuses :class:`TileBuffers` per shape bucket.

    Parameters
    ----------
    on_alloc:
        Optional callback ``f(nbytes)`` invoked whenever a new bucket
        is allocated (the engine uses it to aggregate workspace bytes
        across thread-local workspaces into one gauge).
    """

    def __init__(self, on_alloc=None) -> None:
        self._tiles: dict[tuple[int, int], TileBuffers] = {}
        self._vectors: dict[tuple[int, int, int], np.ndarray] = {}
        self._on_alloc = on_alloc

    # -- tile buffers -----------------------------------------------------

    def tile(self, rows: int, cols: int) -> TileView:
        """A tile view of exactly ``(rows, cols)``; bucketed storage."""
        key = (bucket_size(rows), bucket_size(cols))
        buf = self._tiles.get(key)
        if buf is None:
            buf = TileBuffers(*key)
            self._tiles[key] = buf
            if self._on_alloc is not None:
                self._on_alloc(buf.nbytes)
        return buf.view(rows, cols)

    # -- flat vectors -----------------------------------------------------

    def vec(self, rows: int, ncomp: int, slot: int = 0) -> np.ndarray:
        """A ``(rows, ncomp)`` (``(rows,)`` when ``ncomp`` is 0) buffer.

        ``slot`` distinguishes simultaneously live vectors of the same
        shape — e.g. the fused path's predicted source positions and
        velocities, or per-chunk prediction offsets.  Bucketed on the
        row dimension; never shared across slots.
        """
        key = (bucket_size(rows), int(ncomp), int(slot))
        vec = self._vectors.get(key)
        if vec is None:
            shape = (key[0], ncomp) if ncomp else (key[0],)
            vec = np.empty(shape)
            self._vectors[key] = vec
            if self._on_alloc is not None:
                self._on_alloc(vec.nbytes)
        return vec[:rows]

    def partials(self, n_chunks: int, rows: int, ncomp: int, slot: int = 0) -> np.ndarray:
        """Per-chunk partial-sum slab ``(n_chunks, rows[, ncomp])``.

        Backing store for the fixed-order reduction: chunk task ``k``
        writes slice ``[k]``; the caller sums slices in ascending ``k``
        (the software analogue of the GRAPE-6 network-board reduction
        tree).  The view is *not* zeroed — each chunk task zeroes its
        own slice before accumulating, so stale data from a previous
        (larger) call can never leak into a sum.
        """
        key = (
            bucket_size(n_chunks, floor=1) * 1024 + int(ncomp) * 64 + int(slot),
            bucket_size(rows),
            -1,
        )
        slab = self._vectors.get(key)
        if slab is None:
            shape = (bucket_size(n_chunks, floor=1), key[1]) + ((ncomp,) if ncomp else ())
            slab = np.empty(shape)
            self._vectors[key] = slab
            if self._on_alloc is not None:
                self._on_alloc(slab.nbytes)
        return slab[:n_chunks, :rows]

    # -- introspection ----------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes held across all buckets."""
        total = sum(b.nbytes for b in self._tiles.values())
        total += sum(a.nbytes for a in self._vectors.values())
        return total

    @property
    def n_buckets(self) -> int:
        return len(self._tiles) + len(self._vectors)
