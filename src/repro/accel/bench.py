"""Benchmark harness: reference vs. accel kernels across block shapes.

Times every registered kernel implementation on synthetic
planetesimal-like data over a grid of ``(n_active, N)`` shapes and
writes the machine-readable baseline ``BENCH_kernels.json`` at the
repository root (schema below).  This is the perf trajectory's ground
truth: ``tools/check_kernel_registry.py`` requires every registered
kernel to appear in it, and the acceptance gate for the engine is the
``acc_jerk`` speedup at the paper-like ``(1024, 8192)`` block shape.

Run it as a module (repo root, a couple of minutes)::

    PYTHONPATH=src python -m repro.accel.bench
    PYTHONPATH=src python -m repro.accel.bench --quick -o /tmp/bench.json

Document schema::

    {
      "benchmark": "kernels",
      "config":   {engine knobs, numpy version, cpu count},
      "entries": [
        {"op": "acc_jerk", "kernel": "accel",
         "n_active": 1024, "n_source": 8192,
         "best_seconds": ..., "repeats": 3,
         "speedup_vs_reference": ...},   # 1.0 for the reference rows
        ...
      ]
    }
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from . import registry as reg
from .engine import EngineConfig, KernelEngine

__all__ = ["DEFAULT_SHAPES", "QUICK_SHAPES", "make_workload", "run_bench", "main"]

#: (n_active, N) grid; (1024, 8192) is the acceptance shape.
DEFAULT_SHAPES: tuple[tuple[int, int], ...] = (
    (64, 4096),
    (256, 8192),
    (1024, 8192),
    (1024, 16384),
)

#: Tiny grid for smoke tests of the harness itself.
QUICK_SHAPES: tuple[tuple[int, int], ...] = ((32, 256),)

_EPS = 0.008
_SPLINE_H = 0.01


def make_workload(n_active: int, n_source: int, seed: int = 2003):
    """Synthetic disk-like block: a particle system + active indices."""
    from ..core.particles import ParticleSystem

    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n_source, 3)) * 10.0
    vel = rng.normal(size=(n_source, 3)) * 0.1
    mass = rng.uniform(1e-10, 1e-8, n_source)
    system = ParticleSystem(mass, pos, vel, time=0.0)
    system.acc[...] = rng.normal(size=(n_source, 3)) * 1e-4
    system.jerk[...] = rng.normal(size=(n_source, 3)) * 1e-6
    active = np.arange(n_active)
    return system, active


def _op_args(op: str, system, active, t_now: float):
    """The normalised argument tuple one op's runners are timed with."""
    pos_i = system.pos[active]
    vel_i = system.vel[active]
    if op == "acc_jerk":
        return (pos_i, vel_i, system.pos, system.vel, system.mass, _EPS), {
            "self_indices": active
        }
    if op == "acc_only":
        return (pos_i, system.pos, system.mass, _EPS), {"self_indices": active}
    if op == "potential":
        return (pos_i, system.pos, system.mass, _EPS), {"self_indices": active}
    if op == "spline":
        return (pos_i, system.pos, system.mass, _SPLINE_H), {"self_indices": active}
    if op == "acc_jerk_active":
        return (system, active, t_now, _EPS), {}
    if op == "acc_jerk_masked":
        # neighbour-sphere-like sparsity: ~1% of pairs, self excluded
        rng = np.random.default_rng(11)
        include = rng.random((active.size, system.n)) < 0.01
        include[np.arange(active.size), active] = False
        return (pos_i, vel_i, system.pos, system.vel, system.mass, _EPS, include), {}
    if op == "node_force":
        # tree-node-like sources: reuse particle COM/vel, add symmetric
        # traceless quadrupole moments scaled to node size
        rng = np.random.default_rng(5)
        a = rng.normal(size=(system.n, 3, 3))
        sym = a + np.swapaxes(a, 1, 2)
        tr = np.trace(sym, axis1=1, axis2=2)
        sym -= tr[:, None, None] * np.eye(3) / 3.0
        quad = sym * system.mass[:, None, None] * 1e-4
        return (pos_i, vel_i, system.pos, system.vel, system.mass, _EPS), {
            "quad_j": quad
        }
    raise ValueError(f"unknown op {op!r}")


def _time_runner(engine, spec, args, kwargs, repeats: int) -> list[float]:
    """Per-repeat wall seconds (min-of-k and bootstrap CIs happen later)."""
    samples = []
    for _ in range(repeats):
        t0 = perf_counter()
        spec.runner(engine, *args, **kwargs)
        samples.append(perf_counter() - t0)
    return samples


def run_bench(
    shapes=DEFAULT_SHAPES,
    repeats: int = 3,
    engine: KernelEngine | None = None,
    log=print,
) -> dict:
    """Time every registered kernel over ``shapes``; return the document."""
    engine = engine or KernelEngine(EngineConfig.from_env())
    entries = []
    for n_active, n_source in shapes:
        system, active = make_workload(n_active, n_source)
        # Mid-step block time so the predictor polynomials do real work.
        t_now = 1e-3
        reference_best: dict[str, float] = {}
        for spec in reg.all_kernels():
            args, kwargs = _op_args(spec.op, system, active, t_now)
            spec.runner(engine, *args, **kwargs)  # warm-up (workspaces, pool)
            samples = _time_runner(engine, spec, args, kwargs, repeats)
            best = min(samples)
            if spec.name == "reference":
                reference_best[spec.op] = best
            entries.append(
                {
                    "op": spec.op,
                    "kernel": spec.name,
                    "n_active": int(n_active),
                    "n_source": int(n_source),
                    "best_seconds": best,
                    "samples_seconds": samples,
                    "repeats": int(repeats),
                }
            )
            if log:
                log(
                    f"  {spec.key:<24s} ({n_active:>5d},{n_source:>6d}) "
                    f"{best * 1e3:9.2f} ms"
                )
        for entry in entries:
            ref = reference_best.get(entry["op"])
            if entry["n_active"] == n_active and entry["n_source"] == n_source and ref:
                entry["speedup_vs_reference"] = ref / entry["best_seconds"]
    return {
        "config": {
            **engine.config.describe(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "shapes": [list(s) for s in shapes],
        "entries": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny shape grid, one repeat"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: BENCH_kernels.json at the repo root)",
    )
    args = parser.parse_args(argv)

    shapes = QUICK_SHAPES if args.quick else DEFAULT_SHAPES
    repeats = 1 if args.quick else args.repeats
    document = run_bench(shapes=shapes, repeats=repeats)

    if args.output is None:
        out_path = Path(__file__).resolve().parents[3] / "BENCH_kernels.json"
    else:
        out_path = Path(args.output)

    bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        from bench_utils import emit_json
    finally:
        sys.path.pop(0)
    emit_json(document, "kernels", path=out_path, history=True)
    print(f"wrote {out_path} (+ history record)")

    gate = [
        e for e in document["entries"]
        if e["op"] == "acc_jerk" and e["kernel"] != "reference"
        and (e["n_active"], e["n_source"]) == (1024, 8192)
    ]
    for e in gate:
        print(
            f"acc_jerk/{e['kernel']} at (1024, 8192): "
            f"{e.get('speedup_vs_reference', 0.0):.2f}x vs reference"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
