"""Allocation-free tile kernels over :class:`~repro.accel.workspace.TileView`.

Each function evaluates one ``(n_i, n_j)`` interaction tile entirely in
preallocated workspace buffers (``out=`` ufunc and einsum forms) and
**adds** its contribution into caller-owned accumulators.  The maths is
identical to :mod:`repro.core.forces` — Plummer-softened force, jerk,
potential — plus the cubic-spline force of :mod:`repro.core.kernels`;
only the memory discipline differs.

Self-interactions are excluded the same way as the reference kernels:
the softened ``r2`` entry of an (i, i) pair is set to ``inf``, which
drives every downstream term (including the jerk's ``rv/r2``) to an
exact zero.

The fused-prediction helper :func:`predict_sources` evaluates the
GRAPE-6 on-chip predictor polynomial for one j-chunk inside the force
loop, so small active blocks never pay a full-system ``pred_pos`` /
``pred_vel`` sweep.  It reuses the exact expression of
:mod:`repro.core.predictor` so fused and unfused paths agree bit for
bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "tile_mask",
    "acc_jerk_tile",
    "acc_tile",
    "potential_tile",
    "spline_tile",
    "quad_tile",
    "predict_sources",
]


def tile_mask(self_indices, i0: int, i1: int, j0: int, j1: int):
    """Local ``(rows, cols)`` coordinates of excluded self-pairs.

    ``self_indices`` maps sink rows to their global source column; the
    tile covers sink rows ``[i0, i1)`` against source columns
    ``[j0, j1)``.  Returns ``None`` when no self-pair lands in the
    tile.
    """
    if self_indices is None:
        return None
    sel = self_indices[i0:i1]
    inside = (sel >= j0) & (sel < j1)
    if not inside.any():
        return None
    return np.nonzero(inside)[0], sel[inside] - j0


def _separations(tv, pos_i, pos_j, eps2: float, mask) -> None:
    """Fill ``tv.dr`` and softened ``tv.r2`` (with self-pairs at inf)."""
    np.subtract(pos_j[None, :, :], pos_i[:, None, :], out=tv.dr)
    np.einsum("ijk,ijk->ij", tv.dr, tv.dr, out=tv.r2)
    tv.r2 += eps2
    if mask is not None:
        tv.r2[mask] = np.inf


def acc_jerk_tile(
    tv, pos_i, vel_i, pos_j, vel_j, mass_j, eps2: float,
    acc_out, jerk_out, mask=None,
) -> None:
    """Add this tile's softened acceleration and jerk into the outputs."""
    _separations(tv, pos_i, pos_j, eps2, mask)
    np.subtract(vel_j[None, :, :], vel_i[:, None, :], out=tv.dv)
    np.einsum("ijk,ijk->ij", tv.dr, tv.dv, out=tv.rv)
    np.sqrt(tv.r2, out=tv.s)
    tv.s *= tv.r2  # r^3
    np.divide(mass_j[None, :], tv.s, out=tv.mr3)  # m_j / r^3
    np.einsum("ij,ijk->ik", tv.mr3, tv.dr, out=tv.vec1)
    acc_out += tv.vec1
    np.multiply(tv.mr3, tv.rv, out=tv.w)
    tv.w /= tv.r2
    tv.w *= 3.0
    np.einsum("ij,ijk->ik", tv.mr3, tv.dv, out=tv.vec1)
    np.einsum("ij,ijk->ik", tv.w, tv.dr, out=tv.vec2)
    tv.vec1 -= tv.vec2
    jerk_out += tv.vec1


def acc_tile(tv, pos_i, pos_j, mass_j, eps2: float, acc_out, mask=None) -> None:
    """Add this tile's softened acceleration (38-op kernel) into ``acc_out``."""
    _separations(tv, pos_i, pos_j, eps2, mask)
    np.sqrt(tv.r2, out=tv.s)
    tv.s *= tv.r2
    np.divide(mass_j[None, :], tv.s, out=tv.mr3)
    np.einsum("ij,ijk->ik", tv.mr3, tv.dr, out=tv.vec1)
    acc_out += tv.vec1


def potential_tile(tv, pos_i, pos_j, mass_j, eps2: float, phi_out, mask=None) -> None:
    """Subtract this tile's ``sum_j m_j / r`` from ``phi_out`` (phi is negative)."""
    _separations(tv, pos_i, pos_j, eps2, mask)
    np.sqrt(tv.r2, out=tv.s)
    np.divide(mass_j[None, :], tv.s, out=tv.mr3)  # m_j / r
    np.einsum("ij->i", tv.mr3, out=tv.row1)
    phi_out -= tv.row1


def spline_tile(
    tv, pos_i, pos_j, mass_j, h: float, acc_out, mask=None,
) -> None:
    """Add this tile's cubic-spline-softened acceleration into ``acc_out``.

    Piecewise evaluation (Hernquist & Katz 1989 force factor, see
    :func:`repro.core.kernels.spline_force_factor`) over workspace
    buffers: ``u = r/h`` lands in ``s``, the force factor ``g(u)/h^3``
    in ``mr3``.  The three branch masks are the only per-call
    allocations (1 byte per pair, an 8x saving over the reference
    path's float temporaries).
    """
    inv_h3 = 1.0 / float(h) ** 3
    _separations(tv, pos_i, pos_j, 0.0, None)
    np.sqrt(tv.r2, out=tv.s)
    tv.s /= h  # u = r / h
    u = tv.s
    g = tv.mr3
    inner = u < 0.5
    outer = u >= 1.0
    mid = ~(inner | outer)

    # inner: 32/3 + u^2 (32 u - 192/5)
    np.multiply(u, 32.0, out=tv.w)
    tv.w -= 192.0 / 5.0
    tv.w *= u
    tv.w *= u
    tv.w += 32.0 / 3.0
    np.copyto(g, tv.w, where=inner)

    # mid: 64/3 - 48 u + (192/5) u^2 - (32/3) u^3 - 1/(15 u^3)
    np.multiply(u, -32.0 / 3.0, out=tv.w)
    tv.w += 192.0 / 5.0
    tv.w *= u
    tv.w -= 48.0
    tv.w *= u
    tv.w += 64.0 / 3.0
    np.multiply(u, u, out=tv.rv)  # u^2
    tv.rv *= u  # u^3
    tv.rv *= 15.0
    np.divide(1.0, tv.rv, out=tv.rv, where=mid)
    np.subtract(tv.w, tv.rv, out=tv.w, where=mid)
    np.copyto(g, tv.w, where=mid)

    # outer: 1/u^3 (exactly Newtonian)
    np.multiply(u, u, out=tv.rv)
    tv.rv *= u
    np.divide(1.0, tv.rv, out=tv.rv, where=outer)
    np.copyto(g, tv.rv, where=outer)

    g *= inv_h3
    if mask is not None:
        g[mask] = 0.0
    g *= mass_j[None, :]
    np.einsum("ij,ijk->ik", g, tv.dr, out=tv.vec1)
    acc_out += tv.vec1


def quad_tile(tv, quad_j, acc_out) -> None:
    """Add one tile's traceless-quadrupole acceleration into ``acc_out``.

    ``quad_j`` holds the per-node moments ``Q = sum m (3 y y^T - |y|^2 I)``
    (mass included, so no extra mass factor appears here).  The term is

        ``a_quad = Q s / r^5 - 2.5 (s^T Q s) s / r^7``,  ``s = sink - com``,

    evaluated with ``s = -dr`` as ``-(Q dr)/r^5 + 2.5 (dr^T Q dr) dr / r^7``
    (negating before or after the contractions carries the same bits).

    Must run *directly after* :func:`acc_jerk_tile` on the same view: it
    reuses ``tv.dr`` (separations), ``tv.r2`` (softened ``r^2``) and
    ``tv.s`` (``r^3``) left behind by the monopole pass, and clobbers
    ``tv.dv`` / ``tv.rv`` / ``tv.w`` / ``tv.vec1`` / ``tv.vec2``.
    """
    np.einsum("jkl,ijl->ijk", quad_j, tv.dr, out=tv.dv)  # Q dr
    np.einsum("ijk,ijk->ij", tv.dr, tv.dv, out=tv.rv)  # dr^T Q dr
    np.multiply(tv.s, tv.r2, out=tv.w)  # r^5
    np.divide(1.0, tv.w, out=tv.w)
    np.einsum("ij,ijk->ik", tv.w, tv.dv, out=tv.vec1)  # (Q dr) / r^5
    acc_out -= tv.vec1
    tv.w /= tv.r2  # 1 / r^7
    tv.w *= tv.rv
    tv.w *= 2.5
    np.einsum("ij,ijk->ik", tv.w, tv.dr, out=tv.vec2)
    acc_out += tv.vec2


def predict_sources(jpos, jvel, jsc, jdt, jdt6, pos, vel, acc, jerk, t, t_now: float):
    """Predict one j-chunk of sources to ``t_now`` inside the tile loop.

    ``jpos``/``jvel``/``jsc`` are ``(cols, 3)`` workspace buffers,
    ``jdt``/``jdt6`` are ``(cols,)`` scratch; the remaining arguments
    are the *chunk slices* of the system arrays.  Writes the 3rd/2nd
    order Taylor prediction into ``jpos`` / ``jvel`` and returns them.
    The expression mirrors
    :func:`repro.core.predictor.predict_positions` /
    ``predict_velocities`` term for term, so the fused path is
    bit-identical to a full ``predict_system`` sweep.
    """
    np.subtract(t_now, t, out=jdt)
    dt = jdt[:, None]
    # pos + dt*(vel + dt*(0.5*acc + (dt/6)*jerk)); every step below is
    # elementwise and either identical to or a commuted twin of the
    # reference expression (float add/mul are bitwise commutative, and
    # *0.5 is an exact scaling), so the results carry the same bits.
    np.divide(jdt, 6.0, out=jdt6)
    np.multiply(jerk, jdt6[:, None], out=jpos)
    np.multiply(acc, 0.5, out=jsc)
    jpos += jsc
    jpos *= dt
    jpos += vel
    jpos *= dt
    jpos += pos
    # vel + dt*(acc + 0.5*dt*jerk)
    np.multiply(jerk, 0.5, out=jvel)
    jvel *= dt
    jvel += acc
    jvel *= dt
    jvel += vel
    return jpos, jvel
