"""repro.accel — allocation-free, thread-parallel force-kernel engine.

The software analogue of the GRAPE-6 force pipeline stack:
preallocated shape-bucketed tile buffers
(:mod:`~repro.accel.workspace`), ``out=``-form tile kernels
(:mod:`~repro.accel.kernels`), a persistent thread pool with a
fixed-order partial-sum reduction and a fused per-chunk source
predictor (:mod:`~repro.accel.engine`), all behind a kernel registry
with shape-bucketed — optionally autotuned — dispatch
(:mod:`~repro.accel.registry`).

Most callers want the process-wide engine::

    from repro.accel import get_engine
    acc, jerk = get_engine().acc_jerk(pos_i, vel_i, pos, vel, mass, eps)

Tuning env vars (read when the default engine is first built):
``REPRO_TILE_BUDGET``, ``REPRO_KERNEL_THREADS``,
``REPRO_KERNEL_JCHUNK``, ``REPRO_KERNEL_AUTOTUNE`` — see
:class:`~repro.accel.engine.EngineConfig`.
"""

from __future__ import annotations

import threading

from .engine import EngineConfig, KernelEngine, fixed_order_reduce
from .kernels import predict_sources
from .registry import (
    REGISTRY,
    KernelSpec,
    all_kernels,
    kernels_for,
    register_kernel,
    select_kernel,
    shape_bucket,
)
from .workspace import KernelWorkspace, TileBuffers, TileView, bucket_size

__all__ = [
    "EngineConfig",
    "KernelEngine",
    "KernelWorkspace",
    "TileBuffers",
    "TileView",
    "KernelSpec",
    "REGISTRY",
    "register_kernel",
    "all_kernels",
    "kernels_for",
    "select_kernel",
    "shape_bucket",
    "bucket_size",
    "predict_sources",
    "fixed_order_reduce",
    "get_engine",
    "set_engine",
]

_engine_lock = threading.Lock()
_engine: KernelEngine | None = None


def get_engine() -> KernelEngine:
    """The process-wide engine (built from env config on first use)."""
    global _engine
    if _engine is None:
        with _engine_lock:
            if _engine is None:
                _engine = KernelEngine(EngineConfig.from_env())
    return _engine


def set_engine(engine: KernelEngine | None) -> KernelEngine | None:
    """Replace the process-wide engine (``None`` resets to lazy default).

    Returns the previous engine so tests can restore it.
    """
    global _engine
    with _engine_lock:
        previous, _engine = _engine, engine
    return previous
