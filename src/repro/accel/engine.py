"""Allocation-free, thread-parallel force-kernel engine.

:class:`KernelEngine` is the software stand-in for a GRAPE-6 cluster
host board: it owns the preallocated :class:`~repro.accel.workspace`
buffers, a persistent thread pool (NumPy releases the GIL inside the
large tile ufuncs, so j-axis chunks genuinely overlap), and the
dispatch table of :mod:`repro.accel.registry`.

Determinism contract
--------------------
The j-axis chunk plan (:meth:`KernelEngine._jplan`) depends only on
``(n_j, j_chunk, max_chunks)`` — never on thread count, scheduling or
timing — and partial sums are reduced in ascending chunk order (the
software analogue of the GRAPE-6 network-board reduction tree).  The
serial path accumulates the same chunks in the same order, so with
``deterministic=True`` (the default) results are **bit-identical**
whether the engine runs serial or threaded, and independent of
``REPRO_KERNEL_THREADS``.  The only knobs that change bits are
``j_chunk`` (it splits the j summation) and the opt-in timing
autotuner (``REPRO_KERNEL_AUTOTUNE=1``), which may pick different
kernels in different processes.

Environment overrides (read once per :meth:`EngineConfig.from_env`):

``REPRO_TILE_BUDGET``
    Max tile elements (rows*cols) materialised at once; replaces the
    hardcoded ``_TILE_BUDGET`` of :mod:`repro.core.forces`.
``REPRO_KERNEL_THREADS``
    Worker threads (1 disables the pool).
``REPRO_KERNEL_JCHUNK``
    Target j-axis chunk length (changes summation order, hence bits).
``REPRO_KERNEL_AUTOTUNE``
    ``1`` enables timing-based kernel selection per shape bucket.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.predictor import predict_positions, predict_system, predict_velocities
from ..obs import NULL_OBS, NULL_TRACER
from . import kernels as tk
from . import registry as reg
from .workspace import KernelWorkspace

__all__ = ["EngineConfig", "KernelEngine", "fixed_order_reduce"]


def fixed_order_reduce(partials):
    """Left-fold per-chunk partial arrays in ascending chunk order.

    ``partials`` is a sequence (indexed by chunk) of equally-shaped
    ndarrays; the result is ``(((0 + p0) + p1) + ...)`` — the exact
    summation order of :meth:`KernelEngine._sweep` in both its serial
    and threaded modes, which is what makes a distributed fold of
    :meth:`KernelEngine.acc_jerk_active_chunk` partials bit-identical
    to a single-process call.
    """
    partials = list(partials)
    if not partials:
        raise ValueError("nothing to reduce")
    out = np.zeros_like(partials[0])
    for part in partials:
        out += part
    return out


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(int(raw), minimum)
    except ValueError:
        return default


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class EngineConfig:
    """Immutable tuning knobs for one :class:`KernelEngine`.

    ``max_chunks`` caps the j-chunk count *independently of thread
    count* so the summation order (and therefore every bit of the
    result) does not change when ``threads`` does.
    """

    threads: int = 1
    tile_budget: int = 1 << 18
    j_chunk: int = 2048
    max_chunks: int = 16
    #: Below this many pairs a call runs serial (scheduling only — the
    #: chunk plan, and hence the bits, are unaffected).
    parallel_pairs: int = 1 << 18
    #: Shape heuristic: at/above this many pairs the workspace kernels
    #: win over the reference implementations.
    accel_min_pairs: int = 4096
    deterministic: bool = True
    autotune: bool = False

    @classmethod
    def from_env(cls, **overrides) -> "EngineConfig":
        """Build a config from ``REPRO_*`` environment overrides."""
        values = dict(
            threads=_env_int("REPRO_KERNEL_THREADS", min(os.cpu_count() or 1, 8)),
            tile_budget=_env_int("REPRO_TILE_BUDGET", cls.tile_budget, minimum=1024),
            j_chunk=_env_int("REPRO_KERNEL_JCHUNK", cls.j_chunk, minimum=64),
            autotune=_env_flag("REPRO_KERNEL_AUTOTUNE"),
        )
        values.update(overrides)
        return cls(**values)

    def describe(self) -> dict:
        """JSON-friendly view (benchmark provenance block)."""
        return {
            "threads": self.threads,
            "tile_budget": self.tile_budget,
            "j_chunk": self.j_chunk,
            "max_chunks": self.max_chunks,
            "parallel_pairs": self.parallel_pairs,
            "accel_min_pairs": self.accel_min_pairs,
            "deterministic": self.deterministic,
            "autotune": self.autotune,
        }


class KernelEngine:
    """Dispatches force-kernel ops through workspace-backed kernels.

    One engine is meant to live as long as the process (see
    :func:`repro.accel.get_engine`): its thread pool and per-thread
    workspaces amortise across every block step of a run.
    """

    def __init__(self, config: EngineConfig | None = None, obs=None) -> None:
        self.config = config or EngineConfig.from_env()
        self._tls = threading.local()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._ws_bytes = 0
        self._ws_lock = threading.Lock()
        self._pick_cache: dict[tuple, reg.KernelSpec] = {}
        self.observe(obs if obs is not None else NULL_OBS)

    # -- observability -----------------------------------------------------

    def observe(self, obs) -> None:
        """Bind the ``kernel.*`` metric family to ``obs`` (an
        :class:`~repro.obs.Observability` bundle or a bare registry)."""
        metrics = getattr(obs, "metrics", obs)
        self._tracer = getattr(obs, "tracer", NULL_TRACER)
        self._c_calls = metrics.counter("kernel.calls_total")
        self._c_tile_bytes = metrics.counter("kernel.tile_bytes_total")
        self._c_autotune = metrics.counter("kernel.autotune_picks_total")
        self._g_eff = metrics.gauge("kernel.thread_efficiency")
        self._g_threads = metrics.gauge("kernel.threads")
        self._g_ws_bytes = metrics.gauge("kernel.workspace_bytes")
        self._g_threads.set(self.config.threads)
        self._g_ws_bytes.set(self._ws_bytes)

    def _on_alloc(self, nbytes: int) -> None:
        with self._ws_lock:
            self._ws_bytes += int(nbytes)
            self._g_ws_bytes.set(self._ws_bytes)

    @property
    def workspace_bytes(self) -> int:
        """Bytes currently held across all thread-local workspaces."""
        return self._ws_bytes

    # -- workers / workspaces ---------------------------------------------

    def _ws(self) -> KernelWorkspace:
        ws = getattr(self._tls, "ws", None)
        if ws is None:
            ws = self._tls.ws = KernelWorkspace(on_alloc=self._on_alloc)
        return ws

    def _get_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.threads,
                    thread_name_prefix="repro-kernel",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the thread pool (workspaces stay warm)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    # -- chunk planning ----------------------------------------------------

    def _jplan(self, n_j: int) -> list[tuple[int, int]]:
        """Fixed j-axis chunk bounds — a pure function of the config.

        Near-equal integer split into ``min(ceil(n_j/j_chunk),
        max_chunks)`` chunks; never consults thread count or runtime
        state, which is what makes threaded results reproducible.
        """
        cfg = self.config
        n_chunks = max(1, min(-(-n_j // cfg.j_chunk), cfg.max_chunks))
        base, extra = divmod(n_j, n_chunks)
        bounds = []
        j0 = 0
        for k in range(n_chunks):
            j1 = j0 + base + (1 if k < extra else 0)
            bounds.append((j0, j1))
            j0 = j1
        return bounds

    def _rows(self, n_i: int, width: int) -> int:
        return max(1, min(n_i, self.config.tile_budget // max(width, 1)))

    # -- the sweep driver --------------------------------------------------

    def _sweep(self, n_i: int, n_j: int, outs: list, chunk_body) -> None:
        """Run ``chunk_body(ws, j0, j1, outs)`` over the j-chunk plan.

        ``chunk_body`` must *add* its chunk's contribution into the
        (pre-zeroed) ``outs`` arrays.  Serial mode accumulates chunks
        directly, in ascending order; threaded mode gives every chunk a
        zeroed partial-sum slice and reduces the slices in the same
        ascending order, so both orderings are ``(((0+t0)+t1)+...)``
        and the results are bit-identical.
        """
        chunks = self._jplan(n_j)
        cfg = self.config
        threaded = (
            len(chunks) > 1
            and cfg.threads > 1
            and n_i * n_j >= cfg.parallel_pairs
        )
        if not threaded:
            ws = self._ws()
            for j0, j1 in chunks:
                chunk_body(ws, j0, j1, outs)
            return

        main_ws = self._ws()
        slabs = [
            main_ws.partials(len(chunks), n_i, o.shape[1] if o.ndim == 2 else 0, slot=m)
            for m, o in enumerate(outs)
        ]
        busy = [0.0] * len(chunks)

        def task(k: int, j0: int, j1: int) -> None:
            t0 = perf_counter()
            ws = self._ws()
            parts = [slab[k] for slab in slabs]
            for part in parts:
                part[...] = 0.0
            chunk_body(ws, j0, j1, parts)
            busy[k] = perf_counter() - t0

        t_wall = perf_counter()
        pool = self._get_pool()
        futures = [pool.submit(task, k, j0, j1) for k, (j0, j1) in enumerate(chunks)]
        for fut in futures:
            fut.result()
        # Fixed-order reduction: ascending chunk index, like the GRAPE
        # network boards summing pipeline partials in wired order.
        for out, slab in zip(outs, slabs):
            for k in range(len(chunks)):
                out += slab[k]
        wall = perf_counter() - t_wall
        if wall > 0.0:
            self._g_eff.set(min(sum(busy) / (cfg.threads * wall), 1.0))

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, op: str, n_i: int, n_j: int, args: tuple, kwargs: dict,
                 kernel: str | None = None):
        """Select a kernel for ``op`` at shape ``(n_i, n_j)`` and run it.

        ``kernel`` pins a specific registered implementation, bypassing
        the size heuristic, the autotuner *and* the per-bucket cache.
        Callers that promise bit-stable results across call shapes (the
        grouped tree walk evaluates the same physics in group-sized
        slices, where the heuristic could flip small groups onto the
        ``reference`` kernels and change low-order bits) pin the
        ``accel`` family this way.
        """
        self._c_calls.inc()
        if kernel is not None:
            spec = reg.REGISTRY.get((op, kernel))
            if spec is None:
                raise ValueError(
                    f"no kernel {kernel!r} registered for op {op!r}"
                )
            if not self._tracer.enabled:
                return spec.runner(self, *args, **kwargs)
            with self._tracer.span(
                "kernel." + op, kernel=spec.name, n_i=n_i, n_j=n_j
            ):
                return spec.runner(self, *args, **kwargs)
        key = (op, reg.shape_bucket(n_i), reg.shape_bucket(n_j))
        spec = self._pick_cache.get(key)
        if spec is None:
            if self.config.autotune:
                return self._autotune(key, op, args, kwargs)
            spec = reg.select_kernel(op, n_i, n_j, self)
            self._pick_cache[key] = spec
        if not self._tracer.enabled:
            return spec.runner(self, *args, **kwargs)
        with self._tracer.span(
            "kernel." + op, kernel=spec.name, n_i=n_i, n_j=n_j
        ):
            return spec.runner(self, *args, **kwargs)

    def _autotune(self, key: tuple, op: str, args: tuple, kwargs: dict):
        """Time every candidate once, cache the winner, return its result."""
        best = None
        for spec in reg.kernels_for(op):
            t0 = perf_counter()
            result = spec.runner(self, *args, **kwargs)
            elapsed = perf_counter() - t0
            if best is None or elapsed < best[0]:
                best = (elapsed, spec, result)
        self._pick_cache[key] = best[1]
        self._c_autotune.inc()
        return best[2]

    def cached_pick(self, op: str, n_i: int, n_j: int):
        """The cached :class:`KernelSpec` for a shape bucket, or ``None``."""
        return self._pick_cache.get((op, reg.shape_bucket(n_i), reg.shape_bucket(n_j)))

    # -- public ops (normalise, count, dispatch) ---------------------------

    def acc_jerk(self, pos_i, vel_i, pos_j, vel_j, mass_j, eps,
                 self_indices=None, counter=None, kernel=None):
        """Softened acceleration and jerk; mirrors
        :func:`repro.core.forces.acc_jerk`.

        On the ``accel`` kernel a ``self_indices`` entry of ``-1`` means
        "no self column in this source list" (no pair excluded for that
        sink row — it can never land inside a j-chunk); the ``reference``
        kernel requires valid indices.  ``kernel`` pins a registered
        implementation (see :meth:`dispatch`).
        """
        pos_i, vel_i, pos_j, vel_j = _norm(pos_i, vel_i, pos_j, vel_j)
        mass_j = _mass(mass_j)
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        if counter is not None:
            counter.add(n_i, n_j, with_jerk=True)
        self._c_tile_bytes.inc(n_i * n_j * 8 * 11)
        return self.dispatch(
            "acc_jerk", n_i, n_j,
            (pos_i, vel_i, pos_j, vel_j, mass_j, eps),
            {"self_indices": _idx(self_indices)},
            kernel=kernel,
        )

    def acc_only(self, pos_i, pos_j, mass_j, eps, self_indices=None, counter=None):
        """Softened acceleration only; mirrors
        :func:`repro.core.forces.acc_only`."""
        pos_i, pos_j = _norm(pos_i, pos_j)
        mass_j = _mass(mass_j)
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        if counter is not None:
            counter.add(n_i, n_j, with_jerk=False)
        self._c_tile_bytes.inc(n_i * n_j * 8 * 6)
        return self.dispatch(
            "acc_only", n_i, n_j,
            (pos_i, pos_j, mass_j, eps),
            {"self_indices": _idx(self_indices)},
        )

    def pairwise_potential(self, pos_i, pos_j, mass_j, eps, self_indices=None):
        """Softened potential per sink; mirrors
        :func:`repro.core.forces.pairwise_potential`."""
        pos_i, pos_j = _norm(pos_i, pos_j)
        mass_j = _mass(mass_j)
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        self._c_tile_bytes.inc(n_i * n_j * 8 * 6)
        return self.dispatch(
            "potential", n_i, n_j,
            (pos_i, pos_j, mass_j, eps),
            {"self_indices": _idx(self_indices)},
        )

    def acc_spline(self, pos_i, pos_j, mass_j, h, self_indices=None, counter=None):
        """Cubic-spline-softened acceleration; mirrors
        :func:`repro.core.kernels.acc_spline`."""
        pos_i, pos_j = _norm(pos_i, pos_j)
        mass_j = _mass(mass_j)
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        if counter is not None:
            counter.add(n_i, n_j, with_jerk=False)
        self._c_tile_bytes.inc(n_i * n_j * 8 * 7)
        return self.dispatch(
            "spline", n_i, n_j,
            (pos_i, pos_j, mass_j, h),
            {"self_indices": _idx(self_indices)},
        )

    def acc_jerk_masked(self, pos_i, vel_i, pos_j, vel_j, mass_j, eps,
                        include, counter=None, kernel=None):
        """Softened acceleration and jerk over an explicit pair mask.

        ``include`` is a boolean ``(n_i, n_j)`` matrix selecting which
        (sink, source) pairs contribute — the near-field op of the
        tree/direct hybrid backend, where each sink sums only over its
        neighbour sphere.  Excluded pairs cost their tile slot but
        contribute exact zeros (``r2`` driven to inf, the same
        mechanism as self-pair exclusion), so the fixed-order j-chunk
        reduction — and with it serial/threaded bit-identity — is
        untouched.  The counter books the *included* pair count.
        """
        pos_i, vel_i, pos_j, vel_j = _norm(pos_i, vel_i, pos_j, vel_j)
        mass_j = _mass(mass_j)
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        include = np.ascontiguousarray(include, dtype=bool)
        if include.shape != (n_i, n_j):
            raise ValueError(
                f"include mask shape {include.shape} != ({n_i}, {n_j})"
            )
        if counter is not None:
            counter.add(int(include.sum()), 1, with_jerk=True)
        self._c_tile_bytes.inc(n_i * n_j * 8 * 11)
        return self.dispatch(
            "acc_jerk_masked", n_i, n_j,
            (pos_i, vel_i, pos_j, vel_j, mass_j, eps, include), {},
            kernel=kernel,
        )

    def node_force(self, pos_i, vel_i, com_j, vel_j, mass_j, eps,
                   quad_j=None, counter=None, kernel=None):
        """Multipole list kernel: monopole(+quadrupole) acc, monopole jerk.

        The grouped tree walk's bulk-evaluation op: sinks against a
        *list of accepted tree nodes* — ``com_j`` / ``vel_j`` /
        ``mass_j`` are the nodes' centres of mass, COM velocities
        (``mom / mass``) and total masses, ``quad_j`` the optional
        ``(n_j, 3, 3)`` traceless quadrupole moments (mass included).
        No self-pairs or masks: accepted nodes never contain a sink.
        The acceleration gains the quadrupole term when ``quad_j`` is
        given; the jerk stays monopole (the classical compromise of
        tree+Hermite hybrids, matching ``Octree.accelerations``).
        """
        pos_i, vel_i, com_j, vel_j = _norm(pos_i, vel_i, com_j, vel_j)
        mass_j = _mass(mass_j)
        n_i, n_j = pos_i.shape[0], com_j.shape[0]
        if quad_j is not None:
            quad_j = np.asarray(quad_j, dtype=np.float64)
            if quad_j.shape != (n_j, 3, 3):
                raise ValueError(
                    f"quad_j shape {quad_j.shape} != ({n_j}, 3, 3)"
                )
        if counter is not None:
            counter.add(n_i, n_j, with_jerk=True)
        self._c_tile_bytes.inc(n_i * n_j * 8 * (11 if quad_j is None else 14))
        return self.dispatch(
            "node_force", n_i, n_j,
            (pos_i, vel_i, com_j, vel_j, mass_j, eps),
            {"quad_j": quad_j},
            kernel=kernel,
        )

    def acc_jerk_active(self, system, active, t_now, eps, counter=None):
        """Force+jerk on the active block of a particle system at ``t_now``.

        The op every backend block step goes through.  The fused kernel
        predicts sources per j-chunk inside the loop (and leaves the
        system's ``pred_pos``/``pred_vel`` untouched); the reference
        kernel is the classic ``predict_system`` + ``acc_jerk`` pair.
        """
        active = np.asarray(active)
        n_i, n_j = active.size, system.n
        if counter is not None:
            counter.add(n_i, n_j, with_jerk=True)
        self._c_tile_bytes.inc(n_i * n_j * 8 * 11)
        return self.dispatch(
            "acc_jerk_active", n_i, n_j, (system, active, float(t_now), eps), {},
        )

    # -- distributable chunk entry points ----------------------------------

    def jplan(self, n_j: int) -> list[tuple[int, int]]:
        """The public fixed j-chunk plan — the unit of distribution.

        A pure function of ``(n_j, j_chunk, max_chunks)``: any process
        with the same config computes the same bounds, so a rank gang
        can partition the plan, evaluate chunks independently with
        :meth:`acc_jerk_active_chunk`, and fold the partials with
        :func:`fixed_order_reduce` to reproduce the single-process
        result bit for bit.
        """
        return self._jplan(n_j)

    def acc_jerk_active_chunk(self, system, active, t_now, eps, j0, j1,
                              counter=None):
        """One j-chunk's partial of :meth:`acc_jerk_active`.

        Computes the fused predict-and-accumulate contribution of
        sources ``[j0, j1)`` on the active block — exactly the chunk
        body of :meth:`_fused_acc_jerk_active`, into freshly zeroed
        outputs.  Summing these partials in ascending ``jplan`` order
        (``fixed_order_reduce``) reproduces the serial and threaded
        sweeps bit-identically, because both are the same left fold
        ``(((0 + c0) + c1) + ...)`` over the same chunk bounds.

        ``system`` may be a full ``ParticleSystem`` or any object with
        ``mass``/``pos``/``vel``/``acc``/``jerk``/``t`` arrays (e.g. a
        shared-memory :class:`repro.parallel.programs.ArrayView`).
        """
        active = np.asarray(active)
        n_i = active.size
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        j0, j1 = int(j0), int(j1)
        if n_i == 0 or j1 <= j0:
            return acc, jerk
        width = j1 - j0
        if counter is not None:
            counter.add(n_i, width, with_jerk=True)
        self._c_calls.inc()
        self._c_tile_bytes.inc(n_i * width * 8 * 11)
        eps2 = float(eps) ** 2
        dt_i = t_now - system.t[active]
        pos_i = predict_positions(
            system.pos[active], system.vel[active],
            system.acc[active], system.jerk[active], dt_i,
        )
        vel_i = predict_velocities(
            system.vel[active], system.acc[active], system.jerk[active], dt_i,
        )
        ws = self._ws()
        pj, vj = tk.predict_sources(
            ws.vec(width, 3, slot=4), ws.vec(width, 3, slot=5),
            ws.vec(width, 3, slot=6), ws.vec(width, 0, slot=7),
            ws.vec(width, 0, slot=8),
            system.pos[j0:j1], system.vel[j0:j1],
            system.acc[j0:j1], system.jerk[j0:j1],
            system.t[j0:j1], t_now,
        )
        mj = system.mass[j0:j1]
        rows = self._rows(n_i, width)
        for i0 in range(0, n_i, rows):
            i1 = min(i0 + rows, n_i)
            tv = ws.tile(i1 - i0, width)
            mask = tk.tile_mask(active, i0, i1, j0, j1)
            tk.acc_jerk_tile(
                tv, pos_i[i0:i1], vel_i[i0:i1], pj, vj, mj, eps2,
                acc[i0:i1], jerk[i0:i1], mask,
            )
        return acc, jerk

    # -- collision sweep ---------------------------------------------------

    def collision_candidates(self, pos, radii, active):
        """Overlapping (sink-row, source-index) pairs, workspace-tiled.

        Returns ``(rows, cols)`` index arrays sorted row-major over the
        conceptual ``(n_active, N)`` overlap matrix — the same order
        ``np.nonzero`` yields on the reference full-matrix path — with
        self-pairs excluded.  Peak memory is one tile instead of the
        reference's ``(n_active, N, 3)`` slab.
        """
        pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
        radii = np.asarray(radii, dtype=np.float64)
        active = np.asarray(active)
        n_i, n_j = active.size, pos.shape[0]
        if n_i == 0 or n_j == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        pos_i = pos[active]
        rad_i = radii[active]
        ws = self._ws()
        width = min(n_j, max(self.config.j_chunk, 64))
        rows = self._rows(n_i, width)
        hit_r: list[np.ndarray] = []
        hit_c: list[np.ndarray] = []
        for i0 in range(0, n_i, rows):
            i1 = min(i0 + rows, n_i)
            for j0 in range(0, n_j, width):
                j1 = min(j0 + width, n_j)
                tv = ws.tile(i1 - i0, j1 - j0)
                tk._separations(tv, pos_i[i0:i1], pos[j0:j1], 0.0, None)
                np.add(rad_i[i0:i1, None], radii[None, j0:j1], out=tv.w)
                tv.w *= tv.w
                mask = tk.tile_mask(active, i0, i1, j0, j1)
                if mask is not None:
                    tv.r2[mask] = np.inf
                rr, cc = np.nonzero(tv.r2 < tv.w)
                if rr.size:
                    hit_r.append(rr + i0)
                    hit_c.append(cc + j0)
        if not hit_r:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        rows_all = np.concatenate(hit_r)
        cols_all = np.concatenate(hit_c)
        order = np.lexsort((cols_all, rows_all))
        return rows_all[order], cols_all[order]

    # -- workspace kernel implementations ---------------------------------

    def _accel_acc_jerk(self, pos_i, vel_i, pos_j, vel_j, mass_j, eps,
                        self_indices=None):
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        if n_i == 0 or n_j == 0:
            return acc, jerk
        eps2 = float(eps) ** 2

        def body(ws, j0, j1, outs):
            acc_o, jerk_o = outs
            width = j1 - j0
            rows = self._rows(n_i, width)
            pj, vj, mj = pos_j[j0:j1], vel_j[j0:j1], mass_j[j0:j1]
            for i0 in range(0, n_i, rows):
                i1 = min(i0 + rows, n_i)
                tv = ws.tile(i1 - i0, width)
                mask = tk.tile_mask(self_indices, i0, i1, j0, j1)
                tk.acc_jerk_tile(
                    tv, pos_i[i0:i1], vel_i[i0:i1], pj, vj, mj, eps2,
                    acc_o[i0:i1], jerk_o[i0:i1], mask,
                )

        self._sweep(n_i, n_j, [acc, jerk], body)
        return acc, jerk

    def _accel_acc_only(self, pos_i, pos_j, mass_j, eps, self_indices=None):
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        acc = np.zeros((n_i, 3))
        if n_i == 0 or n_j == 0:
            return acc
        eps2 = float(eps) ** 2

        def body(ws, j0, j1, outs):
            (acc_o,) = outs
            width = j1 - j0
            rows = self._rows(n_i, width)
            pj, mj = pos_j[j0:j1], mass_j[j0:j1]
            for i0 in range(0, n_i, rows):
                i1 = min(i0 + rows, n_i)
                tv = ws.tile(i1 - i0, width)
                mask = tk.tile_mask(self_indices, i0, i1, j0, j1)
                tk.acc_tile(tv, pos_i[i0:i1], pj, mj, eps2, acc_o[i0:i1], mask)

        self._sweep(n_i, n_j, [acc], body)
        return acc

    def _accel_potential(self, pos_i, pos_j, mass_j, eps, self_indices=None):
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        phi = np.zeros(n_i)
        if n_i == 0 or n_j == 0:
            return phi
        eps2 = float(eps) ** 2

        def body(ws, j0, j1, outs):
            (phi_o,) = outs
            width = j1 - j0
            rows = self._rows(n_i, width)
            pj, mj = pos_j[j0:j1], mass_j[j0:j1]
            for i0 in range(0, n_i, rows):
                i1 = min(i0 + rows, n_i)
                tv = ws.tile(i1 - i0, width)
                mask = tk.tile_mask(self_indices, i0, i1, j0, j1)
                tk.potential_tile(tv, pos_i[i0:i1], pj, mj, eps2, phi_o[i0:i1], mask)

        self._sweep(n_i, n_j, [phi], body)
        return phi

    def _accel_spline(self, pos_i, pos_j, mass_j, h, self_indices=None):
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        acc = np.zeros((n_i, 3))
        if n_i == 0 or n_j == 0:
            return acc

        def body(ws, j0, j1, outs):
            (acc_o,) = outs
            width = j1 - j0
            rows = self._rows(n_i, width)
            pj, mj = pos_j[j0:j1], mass_j[j0:j1]
            for i0 in range(0, n_i, rows):
                i1 = min(i0 + rows, n_i)
                tv = ws.tile(i1 - i0, width)
                mask = tk.tile_mask(self_indices, i0, i1, j0, j1)
                tk.spline_tile(tv, pos_i[i0:i1], pj, mj, h, acc_o[i0:i1], mask)

        self._sweep(n_i, n_j, [acc], body)
        return acc

    def _accel_acc_jerk_masked(self, pos_i, vel_i, pos_j, vel_j, mass_j, eps,
                               include):
        n_i, n_j = pos_i.shape[0], pos_j.shape[0]
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        if n_i == 0 or n_j == 0:
            return acc, jerk
        eps2 = float(eps) ** 2
        excluded = ~include

        def body(ws, j0, j1, outs):
            acc_o, jerk_o = outs
            width = j1 - j0
            rows = self._rows(n_i, width)
            pj, vj, mj = pos_j[j0:j1], vel_j[j0:j1], mass_j[j0:j1]
            for i0 in range(0, n_i, rows):
                i1 = min(i0 + rows, n_i)
                tv = ws.tile(i1 - i0, width)
                tk.acc_jerk_tile(
                    tv, pos_i[i0:i1], vel_i[i0:i1], pj, vj, mj, eps2,
                    acc_o[i0:i1], jerk_o[i0:i1], excluded[i0:i1, j0:j1],
                )

        self._sweep(n_i, n_j, [acc, jerk], body)
        return acc, jerk

    def _accel_node_force(self, pos_i, vel_i, com_j, vel_j, mass_j, eps,
                          quad_j=None):
        n_i, n_j = pos_i.shape[0], com_j.shape[0]
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        if n_i == 0 or n_j == 0:
            return acc, jerk
        eps2 = float(eps) ** 2

        def body(ws, j0, j1, outs):
            acc_o, jerk_o = outs
            width = j1 - j0
            rows = self._rows(n_i, width)
            pj, vj, mj = com_j[j0:j1], vel_j[j0:j1], mass_j[j0:j1]
            qj = None if quad_j is None else quad_j[j0:j1]
            for i0 in range(0, n_i, rows):
                i1 = min(i0 + rows, n_i)
                tv = ws.tile(i1 - i0, width)
                if qj is None:
                    tk.acc_jerk_tile(
                        tv, pos_i[i0:i1], vel_i[i0:i1], pj, vj, mj, eps2,
                        acc_o[i0:i1], jerk_o[i0:i1], None,
                    )
                    continue
                # Exactly one += into acc_o per tile (like every other
                # tile kernel): monopole and quadrupole accumulate into
                # a scratch row vector first, otherwise the serial and
                # threaded reductions associate the partial sums
                # differently and the bits drift.
                tmp = ws.vec(i1 - i0, 3, slot=9)
                tmp[...] = 0.0
                tk.acc_jerk_tile(
                    tv, pos_i[i0:i1], vel_i[i0:i1], pj, vj, mj, eps2,
                    tmp, jerk_o[i0:i1], None,
                )
                tk.quad_tile(tv, qj, tmp)
                acc_o[i0:i1] += tmp

        self._sweep(n_i, n_j, [acc, jerk], body)
        return acc, jerk

    def _fused_acc_jerk_active(self, system, active, t_now, eps):
        """Fused predict-and-accumulate: sources predicted per j-chunk.

        Sinks are predicted once (block-sized work); sources are
        predicted chunk-by-chunk inside the sweep, so a one-particle
        block never pays an O(N) ``pred_pos`` write.  Prediction uses
        the exact :mod:`repro.core.predictor` expression, so the tile
        sums see bit-identical source coordinates.
        """
        n_i, n_j = active.size, system.n
        acc = np.zeros((n_i, 3))
        jerk = np.zeros((n_i, 3))
        if n_i == 0 or n_j == 0:
            return acc, jerk
        eps2 = float(eps) ** 2
        # Sinks are block-sized: predict with the canonical expression
        # (elementwise, so slicing before or after gives the same bits
        # as a full predict_system sweep).
        dt_i = t_now - system.t[active]
        pos_i = predict_positions(
            system.pos[active], system.vel[active],
            system.acc[active], system.jerk[active], dt_i,
        )
        vel_i = predict_velocities(
            system.vel[active], system.acc[active], system.jerk[active], dt_i,
        )

        def body(ws, j0, j1, outs):
            acc_o, jerk_o = outs
            width = j1 - j0
            pj, vj = tk.predict_sources(
                ws.vec(width, 3, slot=4), ws.vec(width, 3, slot=5),
                ws.vec(width, 3, slot=6), ws.vec(width, 0, slot=7),
                ws.vec(width, 0, slot=8),
                system.pos[j0:j1], system.vel[j0:j1],
                system.acc[j0:j1], system.jerk[j0:j1],
                system.t[j0:j1], t_now,
            )
            mj = system.mass[j0:j1]
            rows = self._rows(n_i, width)
            for i0 in range(0, n_i, rows):
                i1 = min(i0 + rows, n_i)
                tv = ws.tile(i1 - i0, width)
                mask = tk.tile_mask(active, i0, i1, j0, j1)
                tk.acc_jerk_tile(
                    tv, pos_i[i0:i1], vel_i[i0:i1], pj, vj, mj, eps2,
                    acc_o[i0:i1], jerk_o[i0:i1], mask,
                )

        self._sweep(n_i, n_j, [acc, jerk], body)
        return acc, jerk


def _norm(*arrays):
    """Float64 arrays, 2-D (single particles promoted to one row)."""
    return tuple(np.atleast_2d(np.asarray(a, dtype=np.float64)) for a in arrays)


def _mass(mass_j):
    """Float64 1-D mass array (never row-promoted)."""
    return np.asarray(mass_j, dtype=np.float64)


def _idx(self_indices):
    return None if self_indices is None else np.asarray(self_indices)


# -- reference runners (registry glue) ------------------------------------


def _reference_acc_jerk(engine, pos_i, vel_i, pos_j, vel_j, mass_j, eps,
                        self_indices=None):
    from ..core import forces

    return forces.acc_jerk(pos_i, vel_i, pos_j, vel_j, mass_j, eps,
                           self_indices=self_indices)


def _reference_acc_only(engine, pos_i, pos_j, mass_j, eps, self_indices=None):
    from ..core import forces

    return forces.acc_only(pos_i, pos_j, mass_j, eps, self_indices=self_indices)


def _reference_potential(engine, pos_i, pos_j, mass_j, eps, self_indices=None):
    from ..core import forces

    return forces.pairwise_potential(pos_i, pos_j, mass_j, eps,
                                     self_indices=self_indices)


def _reference_spline(engine, pos_i, pos_j, mass_j, h, self_indices=None):
    from ..core.kernels import _acc_spline_reference

    return _acc_spline_reference(pos_i, pos_j, mass_j, h, self_indices=self_indices)


def _reference_acc_jerk_masked(engine, pos_i, vel_i, pos_j, vel_j, mass_j, eps,
                               include):
    dr = pos_j[None, :, :] - pos_i[:, None, :]
    dv = vel_j[None, :, :] - vel_i[:, None, :]
    r2 = np.einsum("ijk,ijk->ij", dr, dr) + float(eps) ** 2
    r2 = np.where(include, r2, np.inf)
    rv = np.einsum("ijk,ijk->ij", dr, dv)
    mr3 = mass_j[None, :] / (r2 * np.sqrt(r2))
    acc = np.einsum("ij,ijk->ik", mr3, dr)
    w = 3.0 * mr3 * rv / r2
    jerk = np.einsum("ij,ijk->ik", mr3, dv) - np.einsum("ij,ijk->ik", w, dr)
    return acc, jerk


def _reference_node_force(engine, pos_i, vel_i, com_j, vel_j, mass_j, eps,
                          quad_j=None):
    dr = com_j[None, :, :] - pos_i[:, None, :]
    dv = vel_j[None, :, :] - vel_i[:, None, :]
    r2 = np.einsum("ijk,ijk->ij", dr, dr) + float(eps) ** 2
    rv = np.einsum("ijk,ijk->ij", dr, dv)
    r3 = r2 * np.sqrt(r2)
    mr3 = mass_j[None, :] / r3
    acc = np.einsum("ij,ijk->ik", mr3, dr)
    w = 3.0 * mr3 * rv / r2
    jerk = np.einsum("ij,ijk->ik", mr3, dv) - np.einsum("ij,ijk->ik", w, dr)
    if quad_j is not None:
        qdr = np.einsum("jkl,ijl->ijk", quad_j, dr)
        drqdr = np.einsum("ijk,ijk->ij", dr, qdr)
        r5 = r3 * r2
        acc -= np.einsum("ij,ijk->ik", 1.0 / r5, qdr)
        acc += np.einsum("ij,ijk->ik", 2.5 * drqdr / (r5 * r2), dr)
    return acc, jerk


def _reference_acc_jerk_active(engine, system, active, t_now, eps):
    from ..core import forces

    predict_system(system, t_now)
    return forces.acc_jerk(
        system.pred_pos[active], system.pred_vel[active],
        system.pred_pos, system.pred_vel, system.mass, eps,
        self_indices=active,
    )


def _register_builtins() -> None:
    spec = reg.register_kernel
    spec("acc_jerk", "reference", _reference_acc_jerk,
         doc="Chunked broadcasting kernel of repro.core.forces")
    spec("acc_jerk", "accel", KernelEngine._accel_acc_jerk,
         doc="Workspace tiles + threaded j-chunks, fixed-order reduction")
    spec("acc_only", "reference", _reference_acc_only,
         doc="Chunked broadcasting kernel of repro.core.forces")
    spec("acc_only", "accel", KernelEngine._accel_acc_only,
         doc="Workspace tiles + threaded j-chunks, fixed-order reduction")
    spec("potential", "reference", _reference_potential,
         doc="Chunked broadcasting kernel of repro.core.forces")
    spec("potential", "accel", KernelEngine._accel_potential,
         doc="Workspace tiles + threaded j-chunks, fixed-order reduction")
    spec("spline", "reference", _reference_spline,
         doc="Chunked broadcasting kernel of repro.core.kernels")
    spec("spline", "accel", KernelEngine._accel_spline,
         doc="Workspace tiles, branch masks as the only per-call allocation")
    spec("acc_jerk_active", "reference", _reference_acc_jerk_active,
         doc="predict_system sweep followed by the reference acc_jerk")
    spec("acc_jerk_active", "fused", KernelEngine._fused_acc_jerk_active,
         doc="Per-j-chunk source prediction fused into the tile loop")
    spec("acc_jerk_masked", "reference", _reference_acc_jerk_masked,
         doc="Single-shot broadcasting sum over an explicit pair mask")
    spec("acc_jerk_masked", "accel", KernelEngine._accel_acc_jerk_masked,
         doc="Workspace tiles with per-tile mask slices, fixed-order reduction")
    spec("node_force", "reference", _reference_node_force,
         doc="Single-shot broadcasting multipole (monopole+quad) list sum")
    spec("node_force", "accel", KernelEngine._accel_node_force,
         doc="Monopole+jerk tiles with a fused quadrupole pass, fixed-order "
             "reduction")


_register_builtins()
