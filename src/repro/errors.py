"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Hardware-simulator errors derive from
:class:`GrapeError`; configuration problems from :class:`ConfigurationError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ParticleError",
    "IntegrationError",
    "SchedulerError",
    "GrapeError",
    "GrapeMemoryError",
    "GrapeLinkError",
    "HardwareFaultError",
    "CommError",
    "SpmdError",
    "SpmdProtocolError",
    "SpmdTimeoutError",
    "TopologyError",
    "SnapshotError",
    "CheckpointError",
    "SimulationKilled",
    "ServeError",
    "JobStateError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class ParticleError(ReproError, ValueError):
    """Invalid particle data (bad shapes, non-finite values, bad indices)."""


class IntegrationError(ReproError, RuntimeError):
    """Time integration failed (e.g. non-finite state, zero timestep)."""


class SchedulerError(ReproError, RuntimeError):
    """The block-timestep scheduler reached an inconsistent state."""


class GrapeError(ReproError, RuntimeError):
    """Base class for GRAPE-6 hardware-simulator errors."""


class GrapeMemoryError(GrapeError):
    """A j-particle memory overflow or invalid memory access on a board."""


class GrapeLinkError(GrapeError):
    """A data-transfer error on a simulated LVDS / PCI / Ethernet link."""


class HardwareFaultError(GrapeError):
    """A hardware fault was detected (non-finite forces, dead pipelines)
    and could not be handled locally; recovery escalates or re-raises."""


class CommError(ReproError, RuntimeError):
    """Simulated message-passing failure (bad rank, mismatched collective)."""


class SpmdError(CommError):
    """Base class for SPMD-runtime failures (in-process VM and the
    multiprocess :mod:`repro.parallel.proc` engine)."""


class SpmdProtocolError(SpmdError):
    """Ranks disagreed about the communication schedule.

    Raised when collectives carrying different superstep tags (or
    different kinds at the same superstep) are posted, or when a rank
    returns while peers still wait on a collective it never joined —
    the failure modes that would otherwise deadlock a real MPI job.
    The message lists each rank's blocked operation and superstep.
    """

    def __init__(self, message: str, blocked: dict | None = None) -> None:
        super().__init__(message)
        #: ``rank -> human-readable blocked-op description``
        self.blocked = dict(blocked or {})


class SpmdTimeoutError(SpmdError):
    """A barrier or receive exceeded its bounded wait.

    Distinct from :class:`SpmdProtocolError`: the schedule may be
    consistent, but a peer is a straggler, hung, or dead.  Carries the
    same per-rank blocked-op summary for diagnosis.
    """

    def __init__(self, message: str, blocked: dict | None = None) -> None:
        super().__init__(message)
        self.blocked = dict(blocked or {})


class TopologyError(ReproError, ValueError):
    """An invalid network topology was requested or constructed."""


class SnapshotError(ReproError, IOError):
    """Snapshot serialisation or deserialisation failed."""


class CheckpointError(SnapshotError):
    """Checkpoint write/restore failed (missing, torn, or incompatible)."""


class ServeError(ReproError, RuntimeError):
    """Campaign-service failure (journal corruption, bad job spec)."""


class JobStateError(ServeError):
    """An illegal job state transition was attempted.

    The legal transitions are declared in
    :data:`repro.serve.jobs.LEGAL_TRANSITIONS`; the lint in
    ``tools/check_job_states.py`` verifies the service code only uses
    declared transitions.
    """


class SimulationKilled(ReproError, RuntimeError):
    """The run was killed mid-flight (the fault injector's host-kill).

    Deliberately *not* a :class:`GrapeError`: in-run recovery must never
    swallow it — the expected handler is checkpoint restart.
    """
