"""Exporters: Chrome-trace JSON, JSONL spans, Prometheus text.

Three formats, three audiences:

* :func:`write_chrome_trace` — a ``chrome://tracing`` / Perfetto file
  ("X" complete events, microsecond timestamps).  The wall and model
  tracks render as two thread rows of one process.
* :func:`write_spans_jsonl` — one JSON object per line following the
  :mod:`repro.runio.runlog` conventions (leading ``header`` record,
  torn tails tolerated by :func:`repro.runio.runlog.read_run_log`).
* :func:`write_prometheus` / :func:`parse_prometheus` — text exposition
  of a metrics registry and the matching reader used by
  ``repro report --metrics``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import SnapshotError
from .trace import MODEL_TRACK, WALL_TRACK

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_prometheus",
    "parse_prometheus",
]

#: Chrome-trace thread ids per track (process is always 1).
_TRACK_TIDS = {WALL_TRACK: 1, MODEL_TRACK: 2}


def chrome_trace_events(tracer) -> list[dict]:
    """The ``traceEvents`` list for a tracer (metadata + complete events)."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track, tid in _TRACK_TIDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"{track} clock"},
            }
        )
    for track in (WALL_TRACK, MODEL_TRACK):
        tid = _TRACK_TIDS[track]
        for s in tracer.of_track(track):
            events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": s.ts_ns / 1e3,  # microseconds
                    "dur": s.dur_ns / 1e3,
                    "args": dict(s.attrs) if s.attrs else {},
                }
            )
    return events


def write_chrome_trace(tracer, path) -> Path:
    """Write the tracer's spans as a Chrome-trace JSON file."""
    path = Path(path)
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-obs-trace-v1"},
    }
    path.write_text(json.dumps(doc))
    return path


def write_spans_jsonl(tracer, path, run_id: str = "") -> Path:
    """Write spans as JSONL (run-log conventions: header first)."""
    path = Path(path)
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "kind": "header",
                    "run_id": run_id,
                    "format": "repro-obs-spans-v1",
                    "n_spans": len(tracer.spans),
                }
            )
            + "\n"
        )
        for track in (WALL_TRACK, MODEL_TRACK):
            for s in tracer.of_track(track):
                rec = {
                    "kind": "span",
                    "name": s.name,
                    "track": s.track,
                    "ts_ns": s.ts_ns,
                    "dur_ns": s.dur_ns,
                    "depth": s.depth,
                }
                if s.attrs:
                    rec["attrs"] = dict(s.attrs)
                fh.write(json.dumps(rec) + "\n")
    return path


def write_prometheus(registry, path) -> Path:
    """Write a registry's text exposition to ``path``."""
    path = Path(path)
    path.write_text(registry.to_prometheus())
    return path


def parse_prometheus(path) -> dict[str, float]:
    """Read a text exposition back into a flat ``name -> value`` dict.

    Names come back in their flattened (underscore) spelling.  Comment
    and blank lines are skipped; a malformed sample line raises
    :class:`~repro.errors.SnapshotError`.
    """
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"metrics file not found: {path}")
    out: dict[str, float] = {}
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise SnapshotError(f"malformed metrics line {lineno} in {path}: {line!r}")
        name, value = parts
        try:
            out[name] = float(value)
        except ValueError as exc:
            raise SnapshotError(
                f"non-numeric metric value on line {lineno} in {path}"
            ) from exc
    return out
