"""Exporters: Chrome-trace JSON, JSONL spans, Prometheus text.

Three formats, three audiences:

* :func:`write_chrome_trace` — a ``chrome://tracing`` / Perfetto file
  ("X" complete events, microsecond timestamps).  The wall and model
  tracks render as two thread rows of one process.
* :func:`write_spans_jsonl` — one JSON object per line following the
  :mod:`repro.runio.runlog` conventions (leading ``header`` record,
  torn tails tolerated by :func:`repro.runio.runlog.read_run_log`).
* :func:`write_prometheus` / :func:`parse_prometheus` — text exposition
  of a metrics registry and the matching reader used by
  ``repro report --metrics``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from ..errors import SnapshotError
from .trace import MODEL_TRACK, WALL_TRACK, Span, SpanLog

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "load_spans",
    "write_prometheus",
    "parse_prometheus",
]

#: Chrome-trace thread ids per track (process is always 1).
_TRACK_TIDS = {WALL_TRACK: 1, MODEL_TRACK: 2}

#: One exposition sample: ``name[{labels}] value`` (labels opaque here —
#: escaped quotes make label blocks non-trivial to split on whitespace).
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?:[^"}]*"(?:[^"\\]|\\.)*")*[^}]*\})?'
    r'\s+(?P<value>\S+)$'
)


def chrome_trace_events(tracer) -> list[dict]:
    """The ``traceEvents`` list for a tracer (metadata + complete events)."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track, tid in _TRACK_TIDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"{track} clock"},
            }
        )
    for track in (WALL_TRACK, MODEL_TRACK):
        tid = _TRACK_TIDS[track]
        for s in tracer.of_track(track):
            events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": s.ts_ns / 1e3,  # microseconds
                    "dur": s.dur_ns / 1e3,
                    "args": dict(s.attrs) if s.attrs else {},
                }
            )
    return events


def write_chrome_trace(tracer, path) -> Path:
    """Write the tracer's spans as a Chrome-trace JSON file."""
    path = Path(path)
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-obs-trace-v1"},
    }
    path.write_text(json.dumps(doc))
    return path


def write_spans_jsonl(tracer, path, run_id: str = "") -> Path:
    """Write spans as JSONL (run-log conventions: header first)."""
    path = Path(path)
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "kind": "header",
                    "run_id": run_id,
                    "format": "repro-obs-spans-v1",
                    "n_spans": len(tracer.spans),
                }
            )
            + "\n"
        )
        for track in (WALL_TRACK, MODEL_TRACK):
            for s in tracer.of_track(track):
                rec = {
                    "kind": "span",
                    "name": s.name,
                    "track": s.track,
                    "ts_ns": s.ts_ns,
                    "dur_ns": s.dur_ns,
                    "depth": s.depth,
                }
                if s.attrs:
                    rec["attrs"] = dict(s.attrs)
                fh.write(json.dumps(rec) + "\n")
    return path


def read_spans_jsonl(path) -> SpanLog:
    """Read a spans JSONL file back into a :class:`~repro.obs.trace.SpanLog`.

    Follows the run-log conventions of :func:`write_spans_jsonl`: a
    leading ``header`` record, one ``span`` object per line, and a torn
    final line (crash mid-write) tolerated silently.  A missing file,
    a mid-file corrupt line, or a span record without its required
    fields raises :class:`~repro.errors.SnapshotError`.
    """
    from ..runio.runlog import read_run_log

    records = read_run_log(path)  # raises SnapshotError on missing/corrupt
    spans = []
    for rec in records:
        if rec.get("kind") != "span":
            continue
        try:
            spans.append(
                Span(
                    rec["name"],
                    rec["track"],
                    rec["ts_ns"],
                    rec["dur_ns"],
                    rec["depth"],
                    rec.get("attrs") or {},
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"malformed span record in {path}: {rec!r}"
            ) from exc
    return SpanLog(spans)


def _spans_from_chrome(doc, path) -> SpanLog:
    """Rebuild spans from a Chrome-trace document (depth from nesting)."""
    tid_to_track = {tid: track for track, tid in _TRACK_TIDS.items()}
    try:
        events = doc["traceEvents"]
    except (TypeError, KeyError) as exc:
        raise SnapshotError(f"{path} is not a Chrome-trace document") from exc
    raw = []
    for e in events:
        if e.get("ph") != "X":
            continue
        track = tid_to_track.get(e.get("tid"))
        if track is None:
            continue
        ts = int(round(float(e["ts"]) * 1e3))
        dur = int(round(float(e["dur"]) * 1e3))
        raw.append((ts, -dur, e["name"], track, e.get("args") or {}))
    spans = []
    stacks: dict[str, list[int]] = {WALL_TRACK: [], MODEL_TRACK: []}
    for ts, neg_dur, name, track, attrs in sorted(raw, key=lambda r: (r[3], r[0], r[1])):
        dur = -neg_dur
        stack = stacks[track]
        while stack and ts >= stack[-1]:
            stack.pop()
        depth = len(stack)
        stack.append(ts + dur)
        spans.append(Span(name, track, ts, dur, depth, attrs))
    return SpanLog(spans)


def load_spans(path) -> SpanLog:
    """Load spans from either export format (sniffed, not by extension).

    Accepts the spans-JSONL file of :func:`write_spans_jsonl` or the
    Chrome-trace JSON of :func:`write_chrome_trace`; raises
    :class:`~repro.errors.SnapshotError` when the file is missing or
    neither format parses.
    """
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"trace file not found: {path}")
    stripped = path.read_text().lstrip()
    if not stripped:
        raise SnapshotError(f"trace file {path} is empty")
    first_line = stripped.splitlines()[0]
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        # not line-delimited: try one whole-document parse (Chrome trace)
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"cannot parse trace file {path}: {exc}") from exc
        return _spans_from_chrome(doc, path)
    if isinstance(first, dict) and "traceEvents" in first:
        return _spans_from_chrome(first, path)
    return read_spans_jsonl(path)


def write_prometheus(registry, path) -> Path:
    """Write a registry's text exposition to ``path``."""
    path = Path(path)
    path.write_text(registry.to_prometheus())
    return path


def parse_prometheus(path) -> dict[str, float]:
    """Read a text exposition back into a flat ``name -> value`` dict.

    Names come back in their flattened (underscore) spelling.  Comment
    and blank lines are skipped; a malformed sample line raises
    :class:`~repro.errors.SnapshotError`.
    """
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"metrics file not found: {path}")
    out: dict[str, float] = {}
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise SnapshotError(f"malformed metrics line {lineno} in {path}: {line!r}")
        try:
            out[m.group("name")] = float(m.group("value"))
        except ValueError as exc:
            raise SnapshotError(
                f"non-numeric metric value on line {lineno} in {path}"
            ) from exc
    return out
