"""Declared metric names — the single source of truth for instrumentation.

Every metric the library emits is declared here with its type and a
one-line help string; the Prometheus exporter pulls HELP text from this
table and ``tools/check_metric_names.py`` fails the build when source
code registers a literal metric name that is not declared (or declares
the wrong type).  Dynamic families (``events.<kind>_total``) are
admitted by prefix.

Naming convention: dotted lower-case components, ``<subsystem>.<what>``
with Prometheus-style unit/total suffixes (``_seconds``, ``_bytes``,
``_total``).  Dots become underscores in the text exposition, so
``grape.pipeline_seconds`` is scraped as ``grape_pipeline_seconds``.
"""

from __future__ import annotations

import re

__all__ = ["METRIC_CATALOGUE", "DYNAMIC_PREFIXES", "NAME_RE", "is_declared", "kind_of"]

#: ``name -> (kind, help)``; kind is ``counter`` / ``gauge`` / ``histogram``.
METRIC_CATALOGUE: dict[str, tuple[str, str]] = {
    # -- integrator / scheduler ------------------------------------------
    "blockstep.total": ("counter", "Block steps taken by the integrator"),
    "blockstep.active_particles": (
        "counter",
        "Cumulative particle steps (sum of active-block sizes)",
    ),
    "scheduler.block_size": ("histogram", "Active-block size distribution"),
    # -- events ----------------------------------------------------------
    "events.escape_total": ("counter", "Escape events logged"),
    "events.merger_total": ("counter", "Merger events logged"),
    "events.close_encounter_total": ("counter", "Close-encounter events logged"),
    # -- force backends --------------------------------------------------
    "force.interactions_total": (
        "counter",
        "Pairwise force interactions evaluated by the run's backend",
    ),
    # -- accel kernel engine ---------------------------------------------
    "kernel.calls_total": ("counter", "Kernel-engine dispatches"),
    "kernel.tile_bytes_total": (
        "counter",
        "Workspace bytes streamed through kernel tiles (pairs x buffers)",
    ),
    "kernel.autotune_picks_total": (
        "counter",
        "Shape buckets resolved by the timing autotuner",
    ),
    "kernel.thread_efficiency": (
        "gauge",
        "Busy/wall fraction of the last threaded kernel sweep",
    ),
    "kernel.threads": ("gauge", "Worker threads of the active kernel engine"),
    "kernel.workspace_bytes": (
        "gauge",
        "Bytes held in preallocated kernel workspaces",
    ),
    # -- GRAPE-6 model ---------------------------------------------------
    "grape.blocks_total": ("counter", "Force blocks computed on the GRAPE machine"),
    "grape.interactions_total": (
        "counter",
        "i x j interactions streamed through the force pipelines",
    ),
    "grape.pipeline_seconds": (
        "counter",
        "Modelled force-pipeline time (the paper's t_pipe)",
    ),
    "grape.host_seconds": (
        "counter",
        "Modelled host computation time (the paper's t_host)",
    ),
    "grape.comm_seconds": (
        "counter",
        "Modelled PCI + LVDS + GbE communication time (the paper's t_comm)",
    ),
    "grape.peak_flops": ("gauge", "Peak speed of the attached machine shape"),
    "grape.jwrite_total": ("counter", "j-particle writes issued through the driver"),
    "grape.wire_bytes_total": ("counter", "Bytes captured on the traced host wire"),
    # -- tree/direct hybrid backend --------------------------------------
    "hybrid.tree_builds_total": (
        "counter",
        "Octree rebuilds by the hybrid backend (one per force block)",
    ),
    "hybrid.near_interactions_total": (
        "counter",
        "Direct near-field pairs summed inside neighbour spheres",
    ),
    "hybrid.far_interactions_total": (
        "counter",
        "Tree-walk interactions (particle-particle + node terms)",
    ),
    "hybrid.tree_seconds": (
        "counter",
        "Wall time in hybrid tree build + far-field walk (t_tree)",
    ),
    "hybrid.direct_seconds": (
        "counter",
        "Wall time in hybrid near-field direct summation (t_direct)",
    ),
    "hybrid.neighbour_count": (
        "histogram",
        "Mean neighbours per active particle, sampled per block",
    ),
    "hybrid.theta": ("gauge", "Opening angle of the hybrid's far-field tree"),
    "hybrid.tree_build_seconds": (
        "counter",
        "Wall time constructing the octree (the rebuild-per-block cost)",
    ),
    "hybrid.tree_walk_seconds": (
        "counter",
        "Wall time walking the tree and evaluating far-field lists",
    ),
    "hybrid.walk.groups_total": (
        "counter",
        "Sink groups formed by the grouped tree walk",
    ),
    "hybrid.walk.node_terms_total": (
        "counter",
        "Sink-node multipole terms evaluated by the grouped walk",
    ),
    "hybrid.walk.pp_terms_total": (
        "counter",
        "Sink-particle terms evaluated from grouped-walk leaf lists",
    ),
    "hybrid.walk.group_size": (
        "histogram",
        "Sinks per grouped-walk group (n_crit caps the refinement)",
    ),
    # -- software communication substrate --------------------------------
    "comm.bytes_sent": ("counter", "Payload bytes sent over simulated links"),
    "comm.messages_total": ("counter", "Point-to-point messages sent"),
    "comm.phases_total": ("counter", "Communication phases executed"),
    "comm.phase_seconds": ("counter", "Simulated communication time"),
    "comm.phase_bytes": ("histogram", "Bytes moved per communication phase"),
    "comm.retransmits_total": (
        "counter",
        "Message retransmissions in the comm substrate (dropped transfers)",
    ),
    # -- fault injection / detection -------------------------------------
    "faults.injected_total": ("counter", "Faults injected by the active fault plan"),
    "faults.detected_total": (
        "counter",
        "Hardware faults detected by the per-block force sanity guard",
    ),
    "faults.recovered_total": (
        "counter",
        "Faults recovered (mask / reload / retransmit) without aborting",
    ),
    "faults.link_retransmits_total": (
        "counter",
        "Link-level retransmissions charged to the GRAPE timing model",
    ),
    "faults.watchdog_trips_total": ("counter", "Energy-error watchdog trips"),
    "faults.masked_chips": (
        "gauge",
        "Chips currently masked out of the j-distribution",
    ),
    # -- recovery --------------------------------------------------------
    "recovery.seconds": (
        "counter",
        "Modelled hardware time spent on recovery re-evaluations",
    ),
    "recovery.reloads_total": (
        "counter",
        "Full j-memory reloads performed during recovery",
    ),
    "recovery.host_fallback_total": (
        "counter",
        "Blocks recovered on the host kernel (hardware unavailable)",
    ),
    "recovery.selftest_sweeps_total": ("counter", "In-run self-test sweeps"),
    # -- checkpoint / restart --------------------------------------------
    "checkpoint.writes_total": ("counter", "Checkpoints written"),
    "checkpoint.restores_total": ("counter", "Runs resumed from a checkpoint"),
    "checkpoint.write_seconds": (
        "histogram",
        "Wall seconds per checkpoint write (atomic snapshot + pointer flip)",
    ),
    "checkpoint.skipped_total": (
        "counter",
        "Corrupt/truncated checkpoint candidates skipped during restore",
    ),
    # -- phase profiler ---------------------------------------------------
    "prof.spans_total": (
        "counter",
        "Spans aggregated by the phase profiler",
    ),
    "prof.phases": ("gauge", "Distinct phases in the last computed profile"),
    "prof.aggregate_seconds": (
        "counter",
        "Wall time the profiler spent aggregating spans (its own overhead)",
    ),
    # -- run-health watchdogs --------------------------------------------
    "health.checks_total": ("counter", "Health-detector evaluations"),
    "health.events_total": (
        "counter",
        "Health events emitted across all detectors",
    ),
    "health.last_severity": (
        "gauge",
        "Max severity of the latest health check (0 ok, 1 warning, 2 critical)",
    ),
    # -- bench-history store ---------------------------------------------
    "perf.history.records_total": (
        "counter",
        "Benchmark records appended to the history store",
    ),
    "perf.history.comparisons_total": (
        "counter",
        "Statistical benchmark comparisons performed (diff / gate)",
    ),
    "perf.history.regressions": (
        "gauge",
        "Significant slowdowns found by the last comparison",
    ),
    # -- campaign service ------------------------------------------------
    "serve.jobs_submitted_total": (
        "counter",
        "Jobs admitted into the campaign queue",
    ),
    "serve.jobs_rejected_total": (
        "counter",
        "Submissions shed by the admission limiter",
    ),
    "serve.jobs_done_total": ("counter", "Jobs completed successfully"),
    "serve.attempts_failed_total": (
        "counter",
        "Job attempts that failed (worker exit, death, timeout, hang)",
    ),
    "serve.jobs_dead_lettered_total": (
        "counter",
        "Jobs parked after exhausting their retry budget",
    ),
    "serve.jobs_lost_total": (
        "counter",
        "Jobs missing a terminal state after a drained campaign (want 0)",
    ),
    "serve.retries_total": ("counter", "Failed attempts re-queued with backoff"),
    "serve.leases_total": ("counter", "Job leases granted to workers"),
    "serve.lease_expiries_total": (
        "counter",
        "Leases expired on hung workers (stale heartbeat)",
    ),
    "serve.worker_deaths_total": (
        "counter",
        "Worker processes that died by signal mid-job",
    ),
    "serve.queue_depth": ("gauge", "Jobs waiting in the fair queue"),
    "serve.workers_busy": ("gauge", "Worker processes currently leased"),
    "serve.job_seconds": (
        "histogram",
        "Wall seconds per successful job attempt (lease to result)",
    ),
    # -- multiprocess SPMD engine ----------------------------------------
    "spmd.runs_total": ("counter", "SPMD programs executed by the process engine"),
    "spmd.supersteps_total": (
        "counter",
        "Collective supersteps completed across the gang",
    ),
    "spmd.messages_total": ("counter", "Messages routed by the SPMD supervisor"),
    "spmd.bytes_total": ("counter", "Payload bytes routed by the SPMD supervisor"),
    "spmd.rank_deaths_total": (
        "counter",
        "Worker ranks observed dead (signal exit) or hung (lease expiry)",
    ),
    "spmd.rank_restarts_total": (
        "counter",
        "Worker ranks restarted with journal replay",
    ),
    "spmd.heartbeat_expiries_total": (
        "counter",
        "Rank heartbeat leases that expired (hung-rank detection)",
    ),
    "spmd.degrades_total": (
        "counter",
        "Runs degraded from processes to the in-process scheduler",
    ),
    "spmd.protocol_errors_total": (
        "counter",
        "Structured SPMD protocol errors (mismatched collective ordering)",
    ),
    "spmd.replayed_ops_total": (
        "counter",
        "Operations served from the replay journal after a rank restart",
    ),
    "spmd.recovery_seconds": (
        "counter",
        "Wall seconds spent restarting ranks or degrading (honest overhead)",
    ),
    "spmd.op_wait_seconds": (
        "histogram",
        "Blocked wait per completed SPMD operation (straggler profile)",
    ),
    "spmd.ranks": ("gauge", "Gang size of the active SPMD process engine"),
    "spmd.shm_bytes": (
        "gauge",
        "Bytes held in the engine's shared-memory particle segments",
    ),
    # -- whole-run measurements ------------------------------------------
    "run.wall_seconds": ("gauge", "Python wall-clock time of the measured run"),
    "run.energy_error": ("gauge", "Relative energy error at the end of the run"),
    "run.particles": ("gauge", "Particle count at the end of the run"),
}

#: Families whose member names are formed at runtime (kind is implied).
#: ``health.detector.`` admits the per-detector event counters
#: (``health.detector.<name>_events_total``) so custom detectors work
#: under a strict registry without a catalogue edit; ``serve.tenant.``
#: admits the campaign service's per-tenant throughput counters
#: (``serve.tenant.<tenant>_done_total``).
DYNAMIC_PREFIXES: tuple[str, ...] = ("events.", "health.detector.", "serve.tenant.")

#: Legal metric name: dotted lower-case, Prometheus-safe after s/./_/g.
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def is_declared(name: str) -> bool:
    """Whether ``name`` is in the catalogue or an admitted dynamic family."""
    if name in METRIC_CATALOGUE:
        return True
    return any(name.startswith(p) for p in DYNAMIC_PREFIXES)


def kind_of(name: str) -> str | None:
    """Declared kind of ``name`` (``None`` for dynamic/undeclared names)."""
    entry = METRIC_CATALOGUE.get(name)
    return entry[0] if entry else None
