"""Bench-history store and regression sentinel.

The repo keeps two committed baselines (``BENCH_kernels.json``,
``BENCH_hybrid.json``) — single snapshots, useful for "what did the
paper-scale shapes cost last time somebody refreshed them".  What they
cannot answer is *did this commit make the kernels slower*, because a
single wall-clock number carries run-to-run noise that easily exceeds a
real few-percent regression.

This module adds the missing pieces:

* :func:`host_fingerprint` — the environment a record was measured on
  (Python, platform, CPU count, ``REPRO_KERNEL_THREADS``, NumPy), so a
  cross-host comparison can be recognised and discounted;
* :class:`BenchHistory` — an append-only store of versioned benchmark
  records under ``benchmarks/results/history/<benchmark>/`` with a
  monotone per-benchmark sequence number;
* :func:`compare_documents` — entry-matched statistical comparison of
  two benchmark documents.  When entries carry raw repeat samples
  (``samples_seconds``), significance comes from a deterministic
  bootstrap over the min-of-k estimator; legacy single-number entries
  fall back to a plain threshold on the point ratio.

``repro perf diff`` / ``trend`` / ``gate`` and
``tools/check_bench_regression.py`` are thin shells over this module.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError, SnapshotError

__all__ = [
    "SCHEMA_VERSION",
    "TIME_FIELDS",
    "host_fingerprint",
    "BenchHistory",
    "entry_key",
    "entry_label",
    "EntryComparison",
    "ComparisonResult",
    "compare_documents",
    "render_comparison",
    "render_trend",
]

#: Version stamped on every history record / v2 benchmark document.
SCHEMA_VERSION = 2

#: Recognised primary measurements, in priority order.
TIME_FIELDS: tuple[str, ...] = ("best_seconds", "wall_seconds", "seconds")

#: Entry fields that are *measured outputs*, not identity: excluded from
#: the matching key alongside every float-valued field.
_MEASUREMENT_FIELDS = frozenset(
    TIME_FIELDS
    + (
        "samples_seconds",
        "repeats",
        "speedup_vs_reference",
        "speedup",
        "wall_per_block",
        "block_steps",
        "work_interactions",
        "work_per_block",
        "energy_error",
        "pairs_per_second",
        "interactions_per_second",
        "gflops",
        "checksum",
    )
)

#: Bootstrap resamples (fixed: determinism beats marginal CI accuracy).
_BOOTSTRAP_RESAMPLES = 400

#: Seed for the bootstrap RNG — fixed so diff/gate are reproducible.
_BOOTSTRAP_SEED = 0x5C2002


def host_fingerprint() -> dict:
    """The measurement environment, for stamping into records.

    Comparisons across differing fingerprints are still performed but
    flagged by the CLI — a 2x "regression" measured on a different
    machine is a provenance problem, not a code problem.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "kernel_threads": os.environ.get("REPRO_KERNEL_THREADS"),
        "numpy": numpy_version,
    }


# -- entry identity --------------------------------------------------------


def entry_key(entry: dict) -> tuple:
    """Stable identity of one benchmark entry across documents.

    Identity is every non-float field that is not a known measurement
    (floats are always measurements or derived from them in this repo's
    benchmark documents; shape/backend/op fields are ints and strings).
    """
    return tuple(
        sorted(
            (k, str(v))
            for k, v in entry.items()
            if k not in _MEASUREMENT_FIELDS and not isinstance(v, float)
        )
    )


def entry_label(key: tuple) -> str:
    """Human spelling of an entry key: ``backend=direct n=64``."""
    return " ".join(f"{k}={v}" for k, v in key)


def _entry_samples(entry: dict) -> list[float] | None:
    samples = entry.get("samples_seconds")
    if isinstance(samples, (list, tuple)) and len(samples) >= 2:
        return [float(s) for s in samples]
    return None


def _entry_seconds(entry: dict) -> float | None:
    samples = _entry_samples(entry)
    if samples:
        return min(samples)
    for field_name in TIME_FIELDS:
        value = entry.get(field_name)
        if value is not None:
            return float(value)
    return None


# -- the store -------------------------------------------------------------


class BenchHistory:
    """Append-only benchmark record store with per-benchmark sequences.

    Layout: ``<root>/<benchmark>/<benchmark>-<seq:05d>.json``, one
    complete document per file.  Appends stamp ``schema_version``,
    ``seq`` and (if absent) a :func:`host_fingerprint`; nothing is ever
    rewritten, so the history is safe to commit alongside the code it
    measures.
    """

    DEFAULT_ROOT = Path("benchmarks/results/history")

    def __init__(self, root=None, obs=None) -> None:
        from . import NULL_OBS

        self.root = Path(root) if root is not None else self.DEFAULT_ROOT
        self.obs = obs or NULL_OBS
        self._c_records = self.obs.metrics.counter("perf.history.records_total")

    # -- writing ----------------------------------------------------------

    def append(self, document: dict) -> Path:
        """Store one benchmark document; returns the record path."""
        name = document.get("benchmark")
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                "history records need a 'benchmark' name field"
            )
        bench_dir = self.root / name
        bench_dir.mkdir(parents=True, exist_ok=True)
        seq = self._next_seq(name)
        record = {
            "schema_version": SCHEMA_VERSION,
            "seq": seq,
            **document,
        }
        record.setdefault("host", host_fingerprint())
        path = bench_dir / f"{name}-{seq:05d}.json"
        with open(path, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=False)
            fh.write("\n")
        self._c_records.inc()
        return path

    def _next_seq(self, name: str) -> int:
        return 1 + max(
            (r.get("seq", 0) for r in self.records(name)), default=0
        )

    # -- reading ----------------------------------------------------------

    def benchmarks(self) -> list[str]:
        """Benchmark names with at least one record."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and any(p.glob("*.json"))
        )

    def records(self, name: str) -> list[dict]:
        """Every record of one benchmark, oldest first (by seq)."""
        bench_dir = self.root / name
        if not bench_dir.is_dir():
            return []
        out = []
        for path in sorted(bench_dir.glob("*.json")):
            try:
                with open(path) as fh:
                    doc = json.load(fh)
            except (json.JSONDecodeError, OSError) as exc:
                raise SnapshotError(
                    f"corrupt history record {path}: {exc}"
                ) from exc
            if isinstance(doc, dict):
                out.append(doc)
        out.sort(key=lambda r: r.get("seq", 0))
        return out

    def latest(self, name: str) -> dict | None:
        """The newest record of one benchmark, or ``None``."""
        records = self.records(name)
        return records[-1] if records else None


# -- comparison ------------------------------------------------------------


@dataclass(frozen=True)
class EntryComparison:
    """One matched entry: baseline vs current."""

    key: tuple
    baseline_seconds: float
    current_seconds: float
    ratio: float
    #: Bootstrap CI over the min-of-k ratio; ``None`` without samples.
    ci_low: float | None
    ci_high: float | None
    #: ``ratio`` beyond threshold *and* statistically supported.
    regression: bool
    improvement: bool

    @property
    def label(self) -> str:
        return entry_label(self.key)

    @property
    def verdict(self) -> str:
        if self.regression:
            return "REGRESSION"
        if self.improvement:
            return "improved"
        return "ok"


@dataclass
class ComparisonResult:
    """Outcome of :func:`compare_documents`."""

    benchmark: str
    threshold: float
    entries: list = field(default_factory=list)
    #: Entry labels present in only one document.
    only_baseline: list = field(default_factory=list)
    only_current: list = field(default_factory=list)
    #: True when the two documents carry differing host fingerprints.
    host_mismatch: bool = False

    @property
    def regressions(self) -> list:
        return [e for e in self.entries if e.regression]

    @property
    def improvements(self) -> list:
        return [e for e in self.entries if e.improvement]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _bootstrap_ci(baseline: list, current: list) -> tuple[float, float]:
    """Deterministic bootstrap CI (2.5%..97.5%) of min(cur)/min(base)."""
    rng = random.Random(_BOOTSTRAP_SEED)
    nb, nc = len(baseline), len(current)
    ratios = []
    for _ in range(_BOOTSTRAP_RESAMPLES):
        b = min(baseline[rng.randrange(nb)] for _ in range(nb))
        c = min(current[rng.randrange(nc)] for _ in range(nc))
        if b > 0:
            ratios.append(c / b)
    if not ratios:
        return (1.0, 1.0)
    ratios.sort()
    lo = ratios[int(0.025 * len(ratios))]
    hi = ratios[min(len(ratios) - 1, int(0.975 * len(ratios)))]
    return (lo, hi)


def _compare_entry(base: dict, cur: dict, key: tuple,
                   threshold: float) -> EntryComparison | None:
    t_base = _entry_seconds(base)
    t_cur = _entry_seconds(cur)
    if t_base is None or t_cur is None or t_base <= 0:
        return None
    ratio = t_cur / t_base
    s_base = _entry_samples(base)
    s_cur = _entry_samples(cur)
    ci_low = ci_high = None
    if s_base and s_cur:
        ci_low, ci_high = _bootstrap_ci(s_base, s_cur)
        # beyond threshold AND the CI excludes "no change"
        regression = ratio > 1.0 + threshold and ci_low > 1.0
        improvement = ratio < 1.0 - threshold and ci_high < 1.0
    else:
        regression = ratio > 1.0 + threshold
        improvement = ratio < 1.0 - threshold
    return EntryComparison(
        key=key,
        baseline_seconds=t_base,
        current_seconds=t_cur,
        ratio=ratio,
        ci_low=ci_low,
        ci_high=ci_high,
        regression=regression,
        improvement=improvement,
    )


def compare_documents(baseline: dict, current: dict,
                      threshold: float = 0.10,
                      obs=None) -> ComparisonResult:
    """Match entries of two benchmark documents and judge each ratio.

    ``threshold`` is the fractional slowdown that counts (default 10%);
    with repeat samples on both sides the call additionally demands the
    bootstrap CI of the min-of-k ratio exclude 1.0, so a noisy single
    outlier repeat cannot fail a gate on its own.
    """
    from . import NULL_OBS

    obs = obs or NULL_OBS
    result = ComparisonResult(
        benchmark=current.get("benchmark") or baseline.get("benchmark") or "?",
        threshold=float(threshold),
    )
    base_entries = {
        entry_key(e): e for e in baseline.get("entries", ()) if isinstance(e, dict)
    }
    cur_entries = {
        entry_key(e): e for e in current.get("entries", ()) if isinstance(e, dict)
    }
    for key in base_entries:
        if key not in cur_entries:
            result.only_baseline.append(entry_label(key))
    for key, cur in cur_entries.items():
        if key not in base_entries:
            result.only_current.append(entry_label(key))
            continue
        cmp = _compare_entry(base_entries[key], cur, key, result.threshold)
        if cmp is not None:
            result.entries.append(cmp)
    result.entries.sort(key=lambda e: e.key)
    host_a, host_b = baseline.get("host"), current.get("host")
    result.host_mismatch = bool(host_a and host_b and host_a != host_b)
    obs.metrics.counter("perf.history.comparisons_total").inc()
    obs.metrics.gauge("perf.history.regressions").set(len(result.regressions))
    return result


# -- rendering -------------------------------------------------------------


def render_comparison(result: ComparisonResult) -> str:
    """The ``repro perf diff`` table (empty string without entries)."""
    from ..perf.report import Table

    if not result.entries:
        return ""
    table = Table(
        ["entry", "base_s", "cur_s", "ratio", "ci95", "verdict"],
        title=(
            f"Benchmark diff: {result.benchmark} "
            f"(threshold {result.threshold:.0%})"
        ),
    )
    for e in result.entries:
        ci = (
            f"[{e.ci_low:.3f}, {e.ci_high:.3f}]"
            if e.ci_low is not None
            else "-"
        )
        table.add_row(
            e.label, e.baseline_seconds, e.current_seconds,
            f"{e.ratio:.3f}", ci, e.verdict,
        )
    lines = [table.render()]
    if result.host_mismatch:
        lines.append(
            "note: host fingerprints differ — ratios compare machines, "
            "not commits"
        )
    for label in result.only_baseline:
        lines.append(f"note: entry only in baseline: {label}")
    for label in result.only_current:
        lines.append(f"note: entry only in current:  {label}")
    return "\n".join(lines)


def render_trend(records: list, benchmark: str, max_entries: int = 8) -> str:
    """Per-entry time trajectory across history records.

    One row per (record, entry); ``vs_first`` is the ratio against the
    oldest record carrying that entry.
    """
    from ..perf.report import Table

    series: dict[tuple, list] = {}
    for rec in records:
        seq = rec.get("seq", 0)
        for entry in rec.get("entries", ()):
            if not isinstance(entry, dict):
                continue
            seconds = _entry_seconds(entry)
            if seconds is None:
                continue
            series.setdefault(entry_key(entry), []).append((seq, seconds))
    if not series:
        return ""
    table = Table(
        ["entry", "seq", "seconds", "vs_first"],
        title=f"Benchmark trend: {benchmark} ({len(records)} records)",
    )
    shown = 0
    for key in sorted(series):
        if shown >= max_entries:
            table_note = len(series) - shown
            return table.render() + (
                f"\n({table_note} more entries — raise max_entries)"
            )
        shown += 1
        points = series[key]
        first = points[0][1]
        for seq, seconds in points:
            ratio = seconds / first if first > 0 else float("nan")
            table.add_row(entry_label(key), seq, seconds, f"{ratio:.3f}")
    return table.render()
