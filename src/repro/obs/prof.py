"""Deterministic phase profiler: hotspot attribution from recorded spans.

The span tracer (:mod:`repro.obs.trace`) records *what happened when*;
this module answers *where the time went*.  :class:`PhaseProfile`
aggregates a finished trace — a live :class:`~repro.obs.trace.Tracer`
or a :class:`~repro.obs.trace.SpanLog` loaded back from disk — into
per-phase statistics on each track:

``total``
    Summed duration of every span with that name (a phase that calls
    itself is still counted once per span, so recursive totals can
    exceed the track length).
``self``
    Total minus the time spent in *direct child* spans — the classic
    flamegraph "self time", which is what hotspot ranking sorts by.

Because aggregation happens **after** the run, over spans the tracer
was recording anyway, the profiler adds no per-block cost to the run
itself; its only overhead is the aggregation sweep, which it meters
into ``prof.aggregate_seconds`` for honesty.

Exports:

* :meth:`PhaseProfile.render_top` — the top-table shown by
  ``repro report --trace`` and ``repro run --profile``;
* :meth:`PhaseProfile.collapsed_stacks` /
  :meth:`PhaseProfile.write_collapsed` — Brendan-Gregg folded-stack
  lines (``run;block_step;force 1234``) for ``flamegraph.pl`` or
  speedscope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from .trace import MODEL_TRACK, WALL_TRACK

__all__ = [
    "PhaseStat",
    "PhaseProfile",
    "profile_spans",
    "profile_trace_file",
]


@dataclass
class PhaseStat:
    """Aggregate timing of one phase (span name) on one track."""

    name: str
    track: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0

    @property
    def total_seconds(self) -> float:
        return self.total_ns / 1e9

    @property
    def self_seconds(self) -> float:
        return self.self_ns / 1e9

    def _add(self, dur_ns: int, self_ns: int) -> None:
        if self.count == 0:
            self.min_ns = dur_ns
            self.max_ns = dur_ns
        else:
            self.min_ns = min(self.min_ns, dur_ns)
            self.max_ns = max(self.max_ns, dur_ns)
        self.count += 1
        self.total_ns += dur_ns
        self.self_ns += self_ns


@dataclass
class PhaseProfile:
    """Per-phase hotspot attribution for one recorded trace."""

    #: ``(track, name) -> PhaseStat``
    stats: dict = field(default_factory=dict)
    #: Track length: summed duration of top-level spans per track.
    track_ns: dict = field(default_factory=dict)
    #: Folded-stack self-time: ``(track, "a;b;c") -> ns``.
    folded: dict = field(default_factory=dict)
    n_spans: int = 0
    #: Wall seconds the aggregation sweep itself took.
    aggregate_seconds: float = 0.0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_spans(cls, source) -> "PhaseProfile":
        """Aggregate a tracer/:class:`SpanLog` (anything with ``of_track``).

        One sweep per track: spans sorted by start time are pushed on a
        stack of open intervals; a span starting inside the stack top is
        its direct child and bills its duration against the parent's
        self time.  The sweep is deterministic — identical spans give an
        identical profile, independent of dict order or wall clock.
        """
        t0 = time.perf_counter()
        prof = cls()
        for track in (WALL_TRACK, MODEL_TRACK):
            spans = source.of_track(track)
            if not spans:
                continue
            # stack entries: [end_ns, name, dur_ns, child_ns, stack_key]
            stack: list[list] = []
            top_level_ns = 0
            for s in spans:
                while stack and s.ts_ns >= stack[-1][0]:
                    prof._finish(track, stack.pop())
                if stack:
                    stack[-1][3] += s.dur_ns
                    key = f"{stack[-1][4]};{s.name}"
                else:
                    top_level_ns += s.dur_ns
                    key = s.name
                stack.append([s.ts_ns + s.dur_ns, s.name, s.dur_ns, 0, key])
                prof.n_spans += 1
            while stack:
                prof._finish(track, stack.pop())
            prof.track_ns[track] = top_level_ns
        prof.aggregate_seconds = time.perf_counter() - t0
        return prof

    def _finish(self, track: str, entry: list) -> None:
        _end, name, dur_ns, child_ns, key = entry
        self_ns = max(0, dur_ns - child_ns)  # clamp rounding overlaps
        stat = self.stats.get((track, name))
        if stat is None:
            stat = self.stats[(track, name)] = PhaseStat(name, track)
        stat._add(dur_ns, self_ns)
        self.folded[(track, key)] = self.folded.get((track, key), 0) + self_ns

    # -- queries ----------------------------------------------------------

    def top(self, track: str = WALL_TRACK, limit: int | None = None,
            by: str = "self") -> list[PhaseStat]:
        """Phases of one track, hottest first (``by``: self | total).

        Ties break on phase name so the ordering is fully deterministic.
        """
        key = (lambda s: (-s.self_ns, s.name)) if by == "self" else (
            lambda s: (-s.total_ns, s.name)
        )
        rows = sorted(
            (s for (t, _), s in self.stats.items() if t == track), key=key
        )
        return rows[:limit] if limit is not None else rows

    def phase(self, name: str, track: str = WALL_TRACK) -> PhaseStat | None:
        """The aggregate for one phase, or ``None``."""
        return self.stats.get((track, name))

    # -- rendering --------------------------------------------------------

    def render_top(self, track: str = WALL_TRACK, limit: int = 12) -> str:
        """Hotspot top-table for one track (empty string if no spans)."""
        from ..perf.report import Table

        rows = self.top(track, limit=limit)
        if not rows:
            return ""
        total = self.track_ns.get(track, 0) or 1
        clock = "wall" if track == WALL_TRACK else "model"
        table = Table(
            ["phase", "calls", "total_s", "self_s", "self_share"],
            title=f"Phase profile ({clock} clock)",
        )
        for s in rows:
            table.add_row(
                s.name, s.count, s.total_seconds, s.self_seconds,
                f"{s.self_ns / total:.1%}",
            )
        lines = [table.render()]
        lines.append(f"track total:      {total / 1e9:.4f} s over "
                     f"{self.n_spans} spans")
        return "\n".join(lines)

    def render(self, limit: int = 12) -> str:
        """Top tables for every populated track."""
        parts = [
            text
            for track in (WALL_TRACK, MODEL_TRACK)
            if (text := self.render_top(track, limit=limit))
        ]
        return "\n\n".join(parts)

    # -- flamegraph export -------------------------------------------------

    def collapsed_stacks(self, track: str = WALL_TRACK) -> list[str]:
        """Folded-stack lines ``a;b;c <microseconds>`` (self time).

        Deterministically ordered by stack path; zero-self stacks are
        dropped (pure pass-through frames still appear as prefixes of
        their children).
        """
        lines = []
        for (t, key), ns in sorted(self.folded.items()):
            if t != track:
                continue
            us = int(round(ns / 1e3))
            if us > 0:
                lines.append(f"{key} {us}")
        return lines

    def write_collapsed(self, path, track: str = WALL_TRACK) -> Path:
        """Write folded stacks for ``flamegraph.pl`` / speedscope."""
        path = Path(path)
        path.write_text("\n".join(self.collapsed_stacks(track)) + "\n")
        return path

    # -- metrics ----------------------------------------------------------

    def bind(self, metrics) -> None:
        """Record the ``prof.*`` family into a metrics registry."""
        metrics.counter("prof.spans_total").inc(self.n_spans)
        metrics.gauge("prof.phases").set(len(self.stats))
        metrics.counter("prof.aggregate_seconds").inc(self.aggregate_seconds)


def profile_spans(source) -> PhaseProfile:
    """Profile a live tracer or span log (alias for ``from_spans``)."""
    return PhaseProfile.from_spans(source)


def profile_trace_file(path) -> PhaseProfile:
    """Profile an exported trace (spans JSONL or Chrome-trace JSON).

    Raises :class:`~repro.errors.SnapshotError` on a missing or
    unparseable file.
    """
    from .export import load_spans

    return PhaseProfile.from_spans(load_spans(path))
