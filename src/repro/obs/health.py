"""Run-health watchdogs: anomaly detectors over live run metrics.

A 10-hour production run (the paper's was 10.3 h) fails slowly long
before it fails loudly: energy drifts, timesteps collapse under a hard
binary, a neighbour sphere outgrows the hardware list, a thread sits
idle, checkpoints start taking seconds.  This module turns those into
structured ``health`` events:

* :class:`HealthDetector` subclasses each watch one failure mode and
  are evaluated by a :class:`HealthMonitor` over a
  :class:`HealthSample` (simulation time + a flat metrics snapshot +
  the driver's own measurements);
* events carry a severity (``info`` / ``warning`` / ``critical``), the
  offending value and the threshold, and serialise to run-log records
  (``kind: "health"``) that ``repro report --run-log`` and ``repro
  top`` render;
* the monitor feeds the ``health.*`` metric family (checks, events,
  last severity) plus a per-detector dynamic counter
  ``health.detector.<name>_events_total``.

The production driver (:class:`repro.runio.ProductionRun`) runs a
default monitor at diagnostics cadence; detectors are cheap (a handful
of dict lookups and a short linear fit), so the stream costs nothing
measurable against a force evaluation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "SEVERITIES",
    "SEVERITY_LEVEL",
    "HealthSample",
    "HealthEvent",
    "HealthDetector",
    "EnergyDriftDetector",
    "BlockCollapseDetector",
    "NeighbourOverflowDetector",
    "ThreadImbalanceDetector",
    "CheckpointLatencyDetector",
    "HealthMonitor",
    "default_detectors",
    "render_health_events",
]

#: Severity names in increasing order of alarm.
SEVERITIES: tuple[str, ...] = ("info", "warning", "critical")

#: Severity name -> numeric level (what ``health.last_severity`` holds).
SEVERITY_LEVEL: dict[str, int] = {s: i for i, s in enumerate(SEVERITIES)}


@dataclass
class HealthSample:
    """One observation fed to every detector.

    ``metrics`` is a flat snapshot
    (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`); it is empty
    when observability is disabled, and detectors must tolerate missing
    keys.  The driver fills the direct measurements it already has
    (energy error, mean block size) so the core detectors work even
    without a metrics registry.
    """

    t: float
    metrics: dict = field(default_factory=dict)
    energy_error: float | None = None
    mean_block: float | None = None


@dataclass(frozen=True)
class HealthEvent:
    """One structured anomaly report."""

    detector: str
    severity: str
    message: str
    t: float
    value: float
    threshold: float

    def to_record(self) -> dict:
        """Run-log payload (``kind`` is added by the logger call)."""
        return {
            "detector": self.detector,
            "severity": self.severity,
            "message": self.message,
            "t": self.t,
            "value": self.value,
            "threshold": self.threshold,
        }


class HealthDetector:
    """Base class: one failure mode, one ``check`` per sample.

    ``name`` must be a lower-case identifier (it becomes part of the
    ``health.detector.<name>_events_total`` metric name).
    """

    name = "detector"

    def check(self, sample: HealthSample) -> HealthEvent | None:
        raise NotImplementedError

    def _event(self, severity: str, message: str, sample: HealthSample,
               value: float, threshold: float) -> HealthEvent:
        return HealthEvent(
            detector=self.name,
            severity=severity,
            message=message,
            t=float(sample.t),
            value=float(value),
            threshold=float(threshold),
        )


class EnergyDriftDetector(HealthDetector):
    """Fits the recent |dE/E| samples and trips on a steep slope.

    The resilience layer's :class:`~repro.resilience.EnergyWatchdog`
    trips on an *absolute* error; this detector catches the slower
    failure — a marginal chip or a collapsing timestep showing up as a
    steady drift rate — before the absolute limit is reached.  Slope is
    a plain least-squares fit over a sliding window, in relative error
    per unit simulation time.
    """

    name = "energy_drift"

    def __init__(self, warn_slope: float = 1e-6, critical_slope: float = 1e-4,
                 window: int = 16) -> None:
        self.warn_slope = float(warn_slope)
        self.critical_slope = float(critical_slope)
        self._samples: deque = deque(maxlen=int(window))

    def check(self, sample: HealthSample) -> HealthEvent | None:
        err = sample.energy_error
        if err is None:
            err = sample.metrics.get("run.energy_error")
        if err is None:
            return None
        self._samples.append((float(sample.t), abs(float(err))))
        if len(self._samples) < 3:
            return None
        ts = [t for t, _ in self._samples]
        es = [e for _, e in self._samples]
        n = len(ts)
        t_mean = sum(ts) / n
        e_mean = sum(es) / n
        var = sum((t - t_mean) ** 2 for t in ts)
        if var == 0.0:
            return None
        slope = sum((t - t_mean) * (e - e_mean) for t, e in zip(ts, es)) / var
        if slope >= self.critical_slope:
            sev, limit = "critical", self.critical_slope
        elif slope >= self.warn_slope:
            sev, limit = "warning", self.warn_slope
        else:
            return None
        return self._event(
            sev,
            f"energy drift slope {slope:.2e}/t exceeds {limit:.1e}/t "
            f"over the last {n} samples",
            sample, slope, limit,
        )


class BlockCollapseDetector(HealthDetector):
    """Trips when the mean active-block size collapses towards 1.

    A hard binary or an unsoftened close encounter drags the global
    minimum timestep down; the scheduler then issues thousands of
    near-single-particle blocks and wall-clock progress stalls (the
    paper's block sizes average thousands).  Detected from the windowed
    mean of ``blockstep.active_particles / blockstep.total`` deltas, or
    from the driver-provided mean when metrics are off.
    """

    name = "block_collapse"

    def __init__(self, warn_mean: float = 2.0, critical_mean: float = 1.1,
                 min_blocks: int = 16) -> None:
        self.warn_mean = float(warn_mean)
        self.critical_mean = float(critical_mean)
        self.min_blocks = int(min_blocks)
        self._last: tuple[float, float] | None = None

    def check(self, sample: HealthSample) -> HealthEvent | None:
        blocks = sample.metrics.get("blockstep.total")
        psteps = sample.metrics.get("blockstep.active_particles")
        mean = None
        count = self.min_blocks
        if blocks is not None and psteps is not None:
            if self._last is not None:
                d_blocks = blocks - self._last[0]
                d_psteps = psteps - self._last[1]
                count = d_blocks
                if d_blocks >= self.min_blocks:
                    mean = d_psteps / d_blocks
            self._last = (blocks, psteps)
        elif sample.mean_block is not None:
            mean = float(sample.mean_block)
        if mean is None or count < self.min_blocks:
            return None
        if mean <= self.critical_mean:
            sev, limit = "critical", self.critical_mean
        elif mean <= self.warn_mean:
            sev, limit = "warning", self.warn_mean
        else:
            return None
        return self._event(
            sev,
            f"block-step collapse: mean active-block size {mean:.2f} "
            f"<= {limit:g} (timestep collapse / hard binary?)",
            sample, mean, limit,
        )


class NeighbourOverflowDetector(HealthDetector):
    """Trips when a neighbour sphere approaches the hardware list size.

    GRAPE-6 returns neighbour lists through fixed-length on-chip
    memory; a sphere holding more candidates than the list overflows
    and the interaction must be retried with a smaller ``h``.  The
    hybrid backend records per-block mean neighbour counts in
    ``hybrid.neighbour_count``; its running max is checked against the
    capacity.
    """

    name = "neighbour_overflow"

    def __init__(self, capacity: int = 256, warn_fraction: float = 0.8) -> None:
        self.capacity = int(capacity)
        self.warn_fraction = float(warn_fraction)

    def check(self, sample: HealthSample) -> HealthEvent | None:
        peak = sample.metrics.get("hybrid.neighbour_count.max")
        if peak is None:
            return None
        if peak >= self.capacity:
            return self._event(
                "critical",
                f"neighbour sphere holds {peak:.0f} particles — overflows "
                f"the hardware list capacity {self.capacity}",
                sample, peak, float(self.capacity),
            )
        limit = self.warn_fraction * self.capacity
        if peak >= limit:
            return self._event(
                "warning",
                f"neighbour sphere at {peak:.0f} particles — within "
                f"{(1 - self.warn_fraction):.0%} of list capacity "
                f"{self.capacity}",
                sample, peak, limit,
            )
        return None


class ThreadImbalanceDetector(HealthDetector):
    """Trips when the threaded kernel sweep leaves workers idle.

    ``kernel.thread_efficiency`` is busy/(threads x wall) of the last
    threaded sweep (:class:`repro.accel.KernelEngine`); a value far
    below 1 on a multi-thread engine means the j-chunk plan is starving
    workers (chunk count < threads, or one chunk dominating).
    """

    name = "thread_imbalance"

    def __init__(self, min_efficiency: float = 0.5) -> None:
        self.min_efficiency = float(min_efficiency)

    def check(self, sample: HealthSample) -> HealthEvent | None:
        threads = sample.metrics.get("kernel.threads", 0.0)
        eff = sample.metrics.get("kernel.thread_efficiency")
        if threads is None or threads <= 1 or not eff:
            return None
        if eff >= self.min_efficiency:
            return None
        return self._event(
            "warning",
            f"kernel thread efficiency {eff:.2f} below "
            f"{self.min_efficiency:g} on {threads:.0f} threads "
            "(load imbalance in the j-chunk plan)",
            sample, eff, self.min_efficiency,
        )


class CheckpointLatencyDetector(HealthDetector):
    """Trips when checkpoint writes get slow enough to stall the run.

    Reads the ``checkpoint.write_seconds`` histogram's max; a write
    budget of ~1 s keeps checkpointing below noise at production
    cadence, and multi-second writes usually mean a struggling disk.
    """

    name = "checkpoint_latency"

    def __init__(self, warn_seconds: float = 1.0,
                 critical_seconds: float = 5.0) -> None:
        self.warn_seconds = float(warn_seconds)
        self.critical_seconds = float(critical_seconds)

    def check(self, sample: HealthSample) -> HealthEvent | None:
        worst = sample.metrics.get("checkpoint.write_seconds.max")
        if worst is None:
            return None
        if worst >= self.critical_seconds:
            sev, limit = "critical", self.critical_seconds
        elif worst >= self.warn_seconds:
            sev, limit = "warning", self.warn_seconds
        else:
            return None
        return self._event(
            sev,
            f"slowest checkpoint write took {worst:.2f} s (budget {limit:g} s)",
            sample, worst, limit,
        )


def default_detectors() -> list[HealthDetector]:
    """The standard watchdog set with production-tuned thresholds."""
    return [
        EnergyDriftDetector(),
        BlockCollapseDetector(),
        NeighbourOverflowDetector(),
        ThreadImbalanceDetector(),
        CheckpointLatencyDetector(),
    ]


class HealthMonitor:
    """Evaluates a detector set per sample and records the event stream.

    Re-raising the same anomaly every sample would bury the signal, so
    each detector is rate-limited: an event is emitted when the
    detector first fires, and again only when its severity changes or
    after ``repeat_every`` further firing checks.
    """

    def __init__(self, detectors=None, obs=None, repeat_every: int = 8,
                 max_events: int = 256) -> None:
        from . import NULL_OBS

        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.obs = obs or NULL_OBS
        self.repeat_every = max(1, int(repeat_every))
        self.events: deque = deque(maxlen=int(max_events))
        self.events_total = 0
        m = self.obs.metrics
        self._c_checks = m.counter("health.checks_total")
        self._c_events = m.counter("health.events_total")
        self._g_last = m.gauge("health.last_severity")
        self._c_by_detector = {
            d.name: m.counter(f"health.detector.{d.name}_events_total")
            for d in self.detectors
        }
        self._streak: dict[str, tuple[str, int]] = {}

    def check(self, sample: HealthSample) -> list[HealthEvent]:
        """Run every detector; returns the newly *emitted* events."""
        emitted = []
        worst = 0
        for det in self.detectors:
            self._c_checks.inc()
            event = det.check(sample)
            if event is None:
                self._streak.pop(det.name, None)
                continue
            worst = max(worst, SEVERITY_LEVEL.get(event.severity, 0))
            prev = self._streak.get(det.name)
            if prev is not None and prev[0] == event.severity:
                streak = prev[1] + 1
                self._streak[det.name] = (event.severity, streak)
                if streak % self.repeat_every != 0:
                    continue  # suppressed repeat
            else:
                self._streak[det.name] = (event.severity, 0)
            emitted.append(event)
            self.events.append(event)
            self.events_total += 1
            self._c_events.inc()
            self._c_by_detector[det.name].inc()
        self._g_last.set(worst)
        return emitted


def render_health_events(events, limit: int = 20) -> str:
    """A printable table of health events (newest last).

    ``events`` may be :class:`HealthEvent` objects or run-log dicts
    (``kind == "health"`` records); empty input gives ''.
    """
    from ..perf.report import Table

    rows = []
    for ev in events:
        if isinstance(ev, HealthEvent):
            rows.append((ev.severity, ev.t, ev.detector, ev.message))
        elif isinstance(ev, dict):
            rows.append(
                (
                    ev.get("severity", "info"),
                    float(ev.get("t", 0.0)),
                    ev.get("detector", "?"),
                    ev.get("message", ""),
                )
            )
    if not rows:
        return ""
    table = Table(
        ["severity", "t", "detector", "message"],
        title=f"Health events ({len(rows)} total)",
    )
    for sev, t, det, msg in rows[-limit:]:
        table.add_row(sev.upper(), t, det, msg)
    return table.render()
