"""Paper-style time breakdown rendered from collected metrics.

Section 5 of the paper argues its 29.5 Tflops headline from exactly
three numbers — pipeline time, host time and communication time — plus
the useful-operation count.  :func:`time_breakdown` recovers those from
a metrics snapshot (either the dotted names of
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` or the flattened
names of :func:`~repro.obs.export.parse_prometheus`) and
:func:`render_time_breakdown` prints them through the shared
:class:`~repro.perf.report.Table` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TimeBreakdown",
    "time_breakdown",
    "render_time_breakdown",
    "HybridBreakdown",
    "hybrid_breakdown",
]


def _get(metrics: dict, dotted: str, default: float = 0.0) -> float:
    """Fetch a metric by dotted name, accepting the flattened spelling."""
    if dotted in metrics:
        return float(metrics[dotted])
    return float(metrics.get(dotted.replace(".", "_"), default))


@dataclass(frozen=True)
class TimeBreakdown:
    """The paper's t_pipe / t_host / t_comm accounting for one run."""

    pipe_seconds: float
    host_seconds: float
    comm_seconds: float
    interactions: float
    peak_flops: float
    wall_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.pipe_seconds + self.host_seconds + self.comm_seconds

    @property
    def useful_flops(self) -> float:
        from ..constants import FLOPS_PER_INTERACTION

        return self.interactions * FLOPS_PER_INTERACTION

    @property
    def achieved_flops_per_s(self) -> float:
        if self.total_seconds == 0.0:
            return 0.0
        return self.useful_flops / self.total_seconds

    @property
    def peak_fraction(self) -> float:
        if self.peak_flops == 0.0:
            return 0.0
        return self.achieved_flops_per_s / self.peak_flops


def time_breakdown(metrics: dict) -> TimeBreakdown | None:
    """Build a :class:`TimeBreakdown`; ``None`` if no GRAPE time was logged."""
    bd = TimeBreakdown(
        pipe_seconds=_get(metrics, "grape.pipeline_seconds"),
        host_seconds=_get(metrics, "grape.host_seconds"),
        comm_seconds=_get(metrics, "grape.comm_seconds"),
        interactions=_get(metrics, "grape.interactions_total"),
        peak_flops=_get(metrics, "grape.peak_flops"),
        wall_seconds=_get(metrics, "run.wall_seconds"),
    )
    if bd.total_seconds == 0.0:
        return None
    return bd


@dataclass(frozen=True)
class HybridBreakdown:
    """t_tree / t_direct accounting of the hybrid backend's force split."""

    tree_seconds: float
    direct_seconds: float
    near_interactions: float
    far_interactions: float
    tree_builds: float

    @property
    def total_seconds(self) -> float:
        return self.tree_seconds + self.direct_seconds


def hybrid_breakdown(metrics: dict) -> HybridBreakdown | None:
    """Build a :class:`HybridBreakdown`; ``None`` if no hybrid time was logged."""
    bd = HybridBreakdown(
        tree_seconds=_get(metrics, "hybrid.tree_seconds"),
        direct_seconds=_get(metrics, "hybrid.direct_seconds"),
        near_interactions=_get(metrics, "hybrid.near_interactions_total"),
        far_interactions=_get(metrics, "hybrid.far_interactions_total"),
        tree_builds=_get(metrics, "hybrid.tree_builds_total"),
    )
    if bd.total_seconds == 0.0 and bd.tree_builds == 0.0:
        return None
    return bd


def _render_hybrid(bd: HybridBreakdown) -> str:
    from ..perf.report import Table

    table = Table(
        ["component", "seconds", "share", "interactions"],
        title="Hybrid force split (t_tree vs t_direct)",
    )
    total = bd.total_seconds or 1.0
    table.add_row(
        "tree far field (t_tree)", bd.tree_seconds,
        f"{bd.tree_seconds / total:.1%}", int(bd.far_interactions),
    )
    table.add_row(
        "direct near field (t_direct)", bd.direct_seconds,
        f"{bd.direct_seconds / total:.1%}", int(bd.near_interactions),
    )
    lines = [table.render()]
    if bd.tree_builds:
        lines.append(f"tree rebuilds:    {int(bd.tree_builds)}")
    return "\n".join(lines)


def render_time_breakdown(metrics: dict) -> str:
    """The breakdown as a printable table (empty string if nothing to show).

    Renders the GRAPE Section-5 table when modelled hardware time was
    logged, and appends the hybrid backend's t_tree/t_direct split when
    ``hybrid.*`` metrics are present (either may appear alone).
    """
    from ..perf.report import Table

    hybrid = hybrid_breakdown(metrics)
    bd = time_breakdown(metrics)
    if bd is None:
        return _render_hybrid(hybrid) if hybrid is not None else ""
    table = Table(
        ["component", "seconds", "share"],
        title="GRAPE-6 time breakdown (paper Section 5)",
    )
    total = bd.total_seconds
    for label, value in (
        ("pipeline (t_pipe)", bd.pipe_seconds),
        ("host (t_host)", bd.host_seconds),
        ("comm (t_comm)", bd.comm_seconds),
    ):
        table.add_row(label, value, f"{value / total:.1%}")
    table.add_row("total (model)", total, "100.0%")
    lines = [table.render()]
    lines.append(
        f"achieved:         {bd.achieved_flops_per_s / 1e12:.3f} Tflops"
        + (f" ({bd.peak_fraction:.1%} of peak)" if bd.peak_flops else "")
    )
    if bd.wall_seconds:
        lines.append(f"python wall:      {bd.wall_seconds:.2f} s")
    if hybrid is not None:
        lines.append(_render_hybrid(hybrid))
    return "\n".join(lines)
