"""Metrics registry: counters, gauges and histograms with a null twin.

The hot-path contract is the null-object pattern: instrumented code
binds its metric objects once (usually in ``__init__``) and calls
``inc`` / ``set`` / ``observe`` unconditionally.  With observability
disabled those calls hit :data:`NULL_COUNTER` & co. — empty-``__slots__``
singletons whose methods do nothing — so the disabled cost is one
attribute lookup plus an empty call, with no branches in user code.

Names are validated against :mod:`repro.obs.catalogue` conventions;
``strict=True`` additionally rejects names missing from the catalogue
(the lint in ``tools/check_metric_names.py`` enforces the same rule
statically over the source tree).
"""

from __future__ import annotations

import math
import re

from ..errors import ConfigurationError
from .catalogue import METRIC_CATALOGUE, NAME_RE, is_declared

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "escape_help",
    "escape_label_value",
]


def escape_help(text: str) -> str:
    """Escape HELP text per the Prometheus exposition format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(value: str) -> str:
    """Escape one label value per the Prometheus exposition format."""
    return (
        str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_suffix(labels: dict | None) -> str:
    """The ``{k="v",...}`` block for a sample line ('' without labels)."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        if not _LABEL_NAME_RE.match(key):
            raise ConfigurationError(f"bad prometheus label name {key!r}")
        parts.append(f'{key}="{escape_label_value(labels[key])}"')
    return "{" + ",".join(parts) + "}"


class Counter:
    """Monotonically increasing value (events, bytes, modelled seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (current N, last energy error)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming summary of observed values (count / sum / min / max).

    Deliberately bucket-free: the block-size and phase-byte
    distributions the library records are cheap to summarise and the
    exact per-size histogram already lives in
    :class:`repro.core.scheduler.BlockStats` when needed.
    """

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Creates-or-returns named metrics and snapshots them for export.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent per name, so
    independent subsystems can bind the same metric (e.g. both the ring
    substrate and the phase simulator feed ``comm.bytes_sent``).
    Requesting an existing name as a different kind is an error.
    """

    enabled = True

    def __init__(self, strict: bool = False) -> None:
        self.strict = bool(strict)
        self._metrics: dict[str, object] = {}

    # -- creation ---------------------------------------------------------

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric
        if not NAME_RE.match(name):
            raise ConfigurationError(f"bad metric name {name!r} (want dotted lower-case)")
        if self.strict and not is_declared(name):
            raise ConfigurationError(
                f"metric {name!r} is not declared in repro.obs.catalogue"
            )
        metric = cls(name)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        """The live metric object, or ``None``."""
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, float]:
        """Flat ``name -> value`` view; histograms expand to
        ``name.count`` / ``name.sum`` / ``name.min`` / ``name.max``."""
        out: dict[str, float] = {}
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Histogram):
                out[f"{name}.count"] = float(m.count)
                out[f"{name}.sum"] = m.sum
                if m.count:
                    out[f"{name}.min"] = m.min
                    out[f"{name}.max"] = m.max
            else:
                out[name] = m.value
        return out

    # -- export -----------------------------------------------------------

    def to_prometheus(self, labels: dict | None = None) -> str:
        """Prometheus text exposition (dots mapped to underscores).

        ``labels`` (e.g. ``{"run_id": "disk-n256"}``) are rendered on
        every sample as constant labels; values are escaped per the
        exposition format (backslash, double quote, newline).  HELP
        text is escaped likewise (backslash, newline).
        """
        suffix = _label_suffix(labels)
        lines: list[str] = []
        for name, m in sorted(self._metrics.items()):
            flat = name.replace(".", "_")
            declared = METRIC_CATALOGUE.get(name)
            help_text = declared[1] if declared else ""
            if help_text:
                lines.append(f"# HELP {flat} {escape_help(help_text)}")
            if isinstance(m, Counter):
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat}{suffix} {m.value:.17g}")
            elif isinstance(m, Gauge):
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat}{suffix} {m.value:.17g}")
            else:  # Histogram -> summary-style exposition
                lines.append(f"# TYPE {flat} summary")
                lines.append(f"{flat}_count{suffix} {m.count}")
                lines.append(f"{flat}_sum{suffix} {m.sum:.17g}")
                if m.count:
                    lines.append(f"{flat}_min{suffix} {m.min:.17g}")
                    lines.append(f"{flat}_max{suffix} {m.max:.17g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._metrics.clear()


# -- the null twin --------------------------------------------------------


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    sum = 0.0
    min = math.inf
    max = -math.inf
    mean = 0.0

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Disabled registry: every request returns a shared no-op metric."""

    enabled = False
    strict = False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def get(self, name: str):
        return None

    def snapshot(self) -> dict[str, float]:
        return {}

    def to_prometheus(self, labels: dict | None = None) -> str:
        return ""

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()
