"""Unified observability: metrics registry + span tracer + exporters.

The paper's headline number is a *time-accounting* claim — 29.5 Tflops
sustained because pipeline, host and communication time were measured
per layer and added up (Section 5).  This package gives every layer of
the reproduction one instrumented clock to report into:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges
  and histograms (catalogue in :mod:`repro.obs.catalogue`);
* :class:`~repro.obs.trace.Tracer` — hierarchical spans on a wall-clock
  track and a modelled-hardware track;
* exporters (:mod:`repro.obs.export`) — Chrome-trace/Perfetto JSON,
  JSONL, Prometheus text exposition;
* :func:`~repro.obs.report.render_time_breakdown` — the paper-style
  t_pipe / t_host / t_comm table from collected metrics.

Instrumented components accept ``obs=None`` and fall back to
:data:`NULL_OBS`, whose registry and tracer are null objects: disabled
instrumentation costs one attribute lookup per call site.  Enable by
passing a real :class:`Observability`::

    from repro.obs import Observability
    obs = Observability()
    result = run_scaled_disk(backend, n=512, obs=obs)
    obs.export_chrome_trace("trace.json")
    obs.export_prometheus("metrics.prom")
"""

from __future__ import annotations

from .catalogue import DYNAMIC_PREFIXES, METRIC_CATALOGUE, is_declared
from .export import (
    load_spans,
    parse_prometheus,
    read_spans_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from .health import (
    HealthEvent,
    HealthMonitor,
    HealthSample,
    default_detectors,
    render_health_events,
)
from .history import (
    SCHEMA_VERSION,
    BenchHistory,
    compare_documents,
    host_fingerprint,
    render_comparison,
    render_trend,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    escape_help,
    escape_label_value,
)
from .prof import PhaseProfile, profile_spans, profile_trace_file
from .report import TimeBreakdown, render_time_breakdown, time_breakdown
from .trace import NULL_TRACER, NullTracer, Span, SpanLog, Tracer

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "escape_help",
    "escape_label_value",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanLog",
    "METRIC_CATALOGUE",
    "DYNAMIC_PREFIXES",
    "is_declared",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "load_spans",
    "write_prometheus",
    "parse_prometheus",
    "TimeBreakdown",
    "time_breakdown",
    "render_time_breakdown",
    "PhaseProfile",
    "profile_spans",
    "profile_trace_file",
    "HealthMonitor",
    "HealthSample",
    "HealthEvent",
    "default_detectors",
    "render_health_events",
    "BenchHistory",
    "SCHEMA_VERSION",
    "host_fingerprint",
    "compare_documents",
    "render_comparison",
    "render_trend",
]


class Observability:
    """Bundle of one metrics registry and one tracer, shared by a run."""

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None, tracer: Tracer | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # -- convenience exports ----------------------------------------------

    def export_chrome_trace(self, path):
        return write_chrome_trace(self.tracer, path)

    def export_spans_jsonl(self, path, run_id: str = ""):
        return write_spans_jsonl(self.tracer, path, run_id=run_id)

    def export_prometheus(self, path):
        return write_prometheus(self.metrics, path)

    def render_time_breakdown(self) -> str:
        return render_time_breakdown(self.metrics.snapshot())


class NullObservability:
    """Disabled bundle: the default for every instrumented component."""

    enabled = False
    metrics = NULL_REGISTRY
    tracer = NULL_TRACER

    def export_chrome_trace(self, path):
        return write_chrome_trace(self.tracer, path)

    def export_spans_jsonl(self, path, run_id: str = ""):
        return write_spans_jsonl(self.tracer, path, run_id=run_id)

    def export_prometheus(self, path):
        return write_prometheus(self.metrics, path)

    def render_time_breakdown(self) -> str:
        return ""


NULL_OBS = NullObservability()
