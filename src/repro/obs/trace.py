"""Hierarchical span tracer with a wall-clock track and a model track.

Two timebases coexist in one trace:

``wall``
    Real elapsed time, measured with ``time.perf_counter_ns`` around
    ``with tracer.span("force"):`` blocks.  Nesting follows the Python
    call structure (block step -> predict / force / correct / ...).

``model``
    The analytic hardware clock.  The GRAPE timing model and the
    communication simulator *price* operations rather than time them,
    so their spans carry modelled durations laid out on a virtual
    timeline (:meth:`Tracer.model_span`).  Keeping them on a separate
    track preserves the Chrome-trace invariant that spans on one thread
    row nest properly — a modelled 2 ms pipeline pass inside a 0.1 ms
    wall-clock call would otherwise overflow its parent.

:class:`NullTracer` is the disabled twin: ``span()`` returns a shared
no-op context manager and ``model_span`` does nothing, so tracing costs
one attribute lookup when off.
"""

from __future__ import annotations

import time

__all__ = ["Span", "SpanLog", "Tracer", "NullTracer", "NULL_TRACER"]

#: Track identifiers (Chrome-trace thread ids are assigned in this order).
WALL_TRACK = "wall"
MODEL_TRACK = "model"


class Span:
    """One finished span: ``[ts_ns, ts_ns + dur_ns)`` on a track."""

    __slots__ = ("name", "track", "ts_ns", "dur_ns", "depth", "attrs")

    def __init__(self, name, track, ts_ns, dur_ns, depth, attrs) -> None:
        self.name = name
        self.track = track
        self.ts_ns = int(ts_ns)
        self.dur_ns = int(dur_ns)
        self.depth = int(depth)
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.track}, ts={self.ts_ns}ns, "
            f"dur={self.dur_ns}ns, depth={self.depth})"
        )


def _sorted_track(spans, track: str) -> list[Span]:
    """Spans of one track ordered by start time (ties: outermost first)."""
    return sorted(
        (s for s in spans if s.track == track),
        key=lambda s: (s.ts_ns, -s.dur_ns, s.depth),
    )


class SpanLog:
    """A read-only collection of finished spans (e.g. loaded from disk).

    Presents the same query surface as :class:`Tracer` (``spans``,
    ``of_track``, ``total_seconds``) so exporters and the phase profiler
    accept either a live tracer or spans round-tripped through JSONL.
    """

    enabled = True

    def __init__(self, spans) -> None:
        self.spans: list[Span] = list(spans)

    def of_track(self, track: str) -> list[Span]:
        return _sorted_track(self.spans, track)

    def total_seconds(self, name: str, track: str = WALL_TRACK) -> float:
        return sum(
            s.dur_ns for s in self.spans if s.name == name and s.track == track
        ) / 1e9


class _LiveSpan:
    """Context manager for one in-flight wall-clock span."""

    __slots__ = ("_tracer", "name", "attrs", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        tr = self._tracer
        self._depth = tr._depth
        tr._depth += 1
        self._start_ns = tr._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tr = self._tracer
        end = tr._clock()
        tr._depth -= 1
        tr.spans.append(
            Span(
                self.name,
                WALL_TRACK,
                self._start_ns - tr._t0,
                end - self._start_ns,
                self._depth,
                self.attrs,
            )
        )
        return False


class Tracer:
    """Collects :class:`Span` records; export via :mod:`repro.obs.export`."""

    enabled = True

    def __init__(self, clock_ns=time.perf_counter_ns) -> None:
        self._clock = clock_ns
        self._t0 = clock_ns()
        self.spans: list[Span] = []
        self._depth = 0
        self._model_clock_ns = 0

    def span(self, name: str, **attrs) -> _LiveSpan:
        """Open a wall-clock span: ``with tracer.span("force", n=64): ...``"""
        return _LiveSpan(self, name, attrs)

    def model_span(self, name, duration_s, attrs=None, children=None) -> Span:
        """Append a modelled span on the virtual-time track.

        ``children`` is an optional sequence of ``(name, duration_s)`` or
        ``(name, duration_s, attrs)`` tuples laid out back-to-back from
        the parent's start; a child is clamped so it never outruns the
        parent (rounding guard), keeping the track properly nested.
        The virtual clock advances by the parent duration.
        """
        ts = self._model_clock_ns
        dur = max(0, int(round(float(duration_s) * 1e9)))
        parent = Span(name, MODEL_TRACK, ts, dur, 0, attrs or {})
        self.spans.append(parent)
        cursor = ts
        end = ts + dur
        for child in children or ():
            cname, cdur_s = child[0], child[1]
            cattrs = child[2] if len(child) > 2 else {}
            cdur = max(0, int(round(float(cdur_s) * 1e9)))
            cdur = min(cdur, end - cursor)
            self.spans.append(Span(cname, MODEL_TRACK, cursor, cdur, 1, cattrs))
            cursor += cdur
        self._model_clock_ns = end
        return parent

    # -- queries ----------------------------------------------------------

    def of_track(self, track: str) -> list[Span]:
        """Spans on one track, ordered by start time (ties: outermost first)."""
        return _sorted_track(self.spans, track)

    def total_seconds(self, name: str, track: str = WALL_TRACK) -> float:
        """Summed duration of every span called ``name`` on ``track``."""
        return sum(s.dur_ns for s in self.spans if s.name == name and s.track == track) / 1e9

    def reset(self) -> None:
        self.spans.clear()
        self._depth = 0
        self._model_clock_ns = 0
        self._t0 = self._clock()


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: shared no-op spans, never records anything."""

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def model_span(self, name, duration_s, attrs=None, children=None) -> None:
        return None

    def of_track(self, track: str) -> list:
        return []

    def total_seconds(self, name: str, track: str = WALL_TRACK) -> float:
        return 0.0

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
