"""Tree/direct hybrid neighbour-scheme force backend.

The Fukushige & Kawai hybrid the paper's related work describes: each
particle's force is split at its neighbour sphere — everything inside
``h_i`` is summed directly (collisional accuracy where it matters),
everything outside comes from a Barnes–Hut octree walk (O(N log N)
where the paper's pure direct sum is O(N^2)).  See ``docs/HYBRID.md``
for the scheme, error bounds and parameter guidance, and
``BENCH_hybrid.json`` for the measured direct-vs-hybrid crossover.
"""

from .backend import HybridBackend
from .walk import (
    InteractionLists,
    SinkGroups,
    WalkStats,
    build_groups,
    grouped_accelerations,
    walk_groups,
)

__all__ = [
    "HybridBackend",
    "SinkGroups",
    "InteractionLists",
    "WalkStats",
    "build_groups",
    "walk_groups",
    "grouped_accelerations",
]
