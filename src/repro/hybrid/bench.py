"""Benchmark harness: direct-vs-hybrid crossover in N.

Runs the scaled paper disk at a grid of particle counts with the pure
direct backend and the hybrid backend, and records, per backend and N:

* the *modelled work* — pairwise interaction evaluations per block
  step (direct: ``n_active * N``; hybrid: near-field pairs plus
  tree-walk terms), which is what O(N^2) vs O(N log N) is about and
  what a GRAPE-class pipeline would actually execute;
* the measured python wall clock, split into t_tree / t_direct for the
  hybrid, and t_tree further into build / walk;
* the relative energy error, to show accuracy is preserved where the
  cost drops.

The hybrid is run with **both** tree-walk strategies — the vectorised
grouped walk (default) and the legacy per-sink python walk — so the
document records the walk-vs-walk speedup alongside the
hybrid-vs-direct crossover.  The ``crossover`` block is computed
against the grouped walk; the per-sink entries exist to show the
python-constant the grouped walk removes (see ``docs/HYBRID.md``).

Writes the machine-readable baseline ``BENCH_hybrid.json`` at the
repository root.  Run as a module (repo root)::

    PYTHONPATH=src python -m repro.hybrid.bench
    PYTHONPATH=src python -m repro.hybrid.bench --quick -o /tmp/bench.json

Document schema::

    {
      "benchmark": "hybrid_crossover",
      "config":  {eps, theta, r_neighbour, t_end, ...},
      "entries": [
        {"n": 512, "backend": "hybrid", "walk": "grouped",
         "block_steps": ..., "work_interactions": ...,
         "work_per_block": ..., "wall_seconds": ...,
         "energy_error": ..., "near_interactions": ...,
         "far_interactions": ..., "tree_seconds": ...,
         "tree_build_seconds": ..., "tree_walk_seconds": ...,
         "direct_seconds": ...},
        ...
      ],
      "crossover": {"work_n": 256, "wall_n": 512},
      "walk_comparison": {"n": 1024, "theta": 0.6,
                          "grouped_walk_seconds": ...,
                          "persink_walk_seconds": ...,
                          "walk_speedup": ...}
    }
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["DEFAULT_GRID", "QUICK_GRID", "run_crossover", "main"]

#: Particle-count grid for the crossover scan.
DEFAULT_GRID: tuple[int, ...] = (64, 128, 256, 512, 1024)

#: Tiny grid for smoke tests of the harness itself.
QUICK_GRID: tuple[int, ...] = (32, 64)

_EPS = 0.008


def _run_one(backend, n: int, t_end: float, seed: int, max_block_steps: int):
    from ..perf.harness import run_scaled_disk

    return run_scaled_disk(
        backend, n=n, t_end=t_end, seed=seed,
        max_block_steps=max_block_steps,
    )


def run_crossover(
    grid=DEFAULT_GRID,
    t_end: float = 0.2,
    seed: int = 0,
    theta: float = 0.6,
    r_neighbour: float = 0.05,
    max_block_steps: int = 250,
    log=print,
) -> dict:
    """Scan ``grid``; return the crossover document."""
    from ..core.backends import HostDirectBackend
    from .backend import HybridBackend

    variants = (("direct", None), ("hybrid", "grouped"), ("hybrid", "persink"))
    entries = []
    per_n: dict[int, dict[str, dict]] = {}
    for n in grid:
        for name, walk in variants:
            if name == "direct":
                backend = HostDirectBackend(eps=_EPS)
            else:
                backend = HybridBackend(
                    eps=_EPS, theta=theta, r_neighbour=r_neighbour, walk=walk
                )
            res = _run_one(backend, n, t_end, seed, max_block_steps)
            if name == "direct":
                work = int(backend.counter.force_interactions)
            else:
                work = int(backend.near_interactions + backend.far_interactions)
            blocks = max(int(res.block_steps), 1)
            entry = {
                "n": int(n),
                "backend": name,
                "walk": walk,
                "block_steps": int(res.block_steps),
                "work_interactions": work,
                "work_per_block": work / blocks,
                "wall_seconds": float(res.wall_seconds),
                "wall_per_block": float(res.wall_seconds) / blocks,
                "energy_error": float(res.energy_error),
            }
            if name == "hybrid":
                entry.update(
                    near_interactions=int(backend.near_interactions),
                    far_interactions=int(backend.far_interactions),
                    tree_seconds=float(backend.tree_seconds),
                    tree_build_seconds=float(backend.build_seconds),
                    tree_walk_seconds=float(backend.walk_seconds),
                    direct_seconds=float(backend.direct_seconds),
                )
            entries.append(entry)
            key = name if walk is None else f"{name}/{walk}"
            per_n.setdefault(int(n), {})[key] = entry
            if log:
                log(
                    f"  n={n:>5d} {key:<15s} work/block {entry['work_per_block']:12.1f} "
                    f"wall {entry['wall_seconds']:7.2f} s  |dE/E| {entry['energy_error']:.2e}"
                )

    def _first_win(metric: str):
        """Smallest N where the grouped-walk hybrid beats direct."""
        for n in sorted(per_n):
            pair = per_n[n]
            if "direct" in pair and "hybrid/grouped" in pair:
                if pair["hybrid/grouped"][metric] < pair["direct"][metric]:
                    return int(n)
        return None

    walk_comparison = None
    n_max = max(per_n)
    top = per_n[n_max]
    if "hybrid/grouped" in top and "hybrid/persink" in top:
        gw = top["hybrid/grouped"]["tree_walk_seconds"]
        pw = top["hybrid/persink"]["tree_walk_seconds"]
        walk_comparison = {
            "n": int(n_max),
            "theta": float(theta),
            "grouped_walk_seconds": float(gw),
            "persink_walk_seconds": float(pw),
            "walk_speedup": float(pw / gw) if gw > 0 else None,
        }
        if log:
            log(
                f"  walk speedup at n={n_max}: {walk_comparison['walk_speedup']:.1f}x "
                f"(persink {pw:.2f} s -> grouped {gw:.2f} s)"
            )

    return {
        "config": {
            "eps": _EPS,
            "theta": float(theta),
            "r_neighbour": float(r_neighbour),
            "t_end": float(t_end),
            "seed": int(seed),
            "max_block_steps": int(max_block_steps),
            "grid": [int(n) for n in grid],
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "entries": entries,
        "crossover": {
            "work_n": _first_win("work_per_block"),
            "wall_n": _first_win("wall_per_block"),
        },
        "walk_comparison": walk_comparison,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny N grid, short runs"
    )
    parser.add_argument("--theta", type=float, default=0.6)
    parser.add_argument("--r-neighbour", type=float, default=0.05)
    parser.add_argument("--t-end", type=float, default=0.2)
    parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: BENCH_hybrid.json at the repo root)",
    )
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else DEFAULT_GRID
    max_blocks = 40 if args.quick else 250
    document = run_crossover(
        grid=grid, t_end=args.t_end, theta=args.theta,
        r_neighbour=args.r_neighbour, max_block_steps=max_blocks,
    )

    if args.output is None:
        out_path = Path(__file__).resolve().parents[3] / "BENCH_hybrid.json"
    else:
        out_path = Path(args.output)

    bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        from bench_utils import emit_json
    finally:
        sys.path.pop(0)
    emit_json(document, "hybrid_crossover", path=out_path, history=True)
    print(f"wrote {out_path} (+ history record)")
    cx = document["crossover"]
    print(f"work crossover:  N = {cx['work_n']}")
    print(f"wall crossover:  N = {cx['wall_n']}")
    wc = document.get("walk_comparison")
    if wc and wc.get("walk_speedup"):
        print(f"grouped-vs-persink walk speedup at N={wc['n']}: "
              f"{wc['walk_speedup']:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
