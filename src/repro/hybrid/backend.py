"""Tree/direct hybrid force backend for the block-timestep integrator.

Per active block the force on each sink ``i`` is split at its
neighbour sphere ``h_i``:

* **near field** — sources with unsoftened ``dist2 < h_i**2``
  (found by :func:`repro.grape.neighbours.neighbour_search`, the same
  range query the GRAPE-6 neighbour memory answers in hardware) are
  summed directly through the :mod:`repro.accel` engine's masked
  kernel, so the fixed-order j-chunk reduction keeps serial and
  threaded results bit-identical;
* **far field** — everything else comes from one
  :class:`repro.baselines.tree.Octree` walk with the sink's sphere
  carved out of the node-acceptance test (a node is only taken as a
  multipole when its cube lies wholly outside the sphere, and leaf
  sums drop in-sphere sources with the *same strict predicate* the
  neighbour search uses), so the near/far partition is exact: no pair
  is double-counted or dropped, and at ``theta = 0`` the hybrid
  reproduces pure direct summation to summation-order rounding.

Jerks stay 4th-order-Hermite-grade on both sides of the split: the
near field uses the exact pairwise jerk, the far field the analytic
monopole jerk from tree-node velocity moments.

The per-particle radii live in ``ParticleSystem.h_nb`` (0 means "use
this backend's ``r_neighbour`` default") and survive prediction,
correction, snapshots and mergers.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..baselines.tree import Octree, resolve_walk_mode
from ..core.backends import ForceBackend
from ..core.forces import InteractionCounter
from ..core.predictor import predict_system
from ..errors import ConfigurationError
from ..grape.neighbours import NeighbourResult, neighbour_search
from ..obs import NULL_OBS

__all__ = ["HybridBackend"]


class HybridBackend(ForceBackend):
    """Neighbour-scheme hybrid: octree far field + direct near field.

    Parameters
    ----------
    eps:
        Plummer softening (matching the direct backends).
    theta:
        Tree opening angle for the far field; 0 degrades to exact
        direct summation (every walk bottoms out in leaves).
    r_neighbour:
        Default neighbour-sphere radius for particles whose
        ``system.h_nb`` is 0.  Larger spheres shift work from the tree
        to the direct sum (more accurate, more expensive).
    leaf_size:
        Octree bucket size.
    engine:
        A :class:`repro.accel.KernelEngine` for the near-field masked
        kernel and the diagnostic potential; defaults to the shared
        process-wide engine.
    walk:
        Tree-walk strategy (:data:`repro.baselines.tree.WALK_MODES`);
        ``None`` resolves ``REPRO_TREE_WALK`` / ``"grouped"``.
    n_crit:
        Grouped-walk sink-group size target (bigger groups amortise
        the walk over more sinks, at the price of a looser bounding
        sphere and thus longer interaction lists).
    """

    def __init__(
        self,
        eps: float,
        theta: float = 0.5,
        r_neighbour: float = 0.05,
        leaf_size: int = 8,
        engine=None,
        walk: str | None = None,
        n_crit: int = 32,
    ) -> None:
        if eps < 0:
            raise ConfigurationError("softening must be non-negative")
        if theta < 0:
            raise ConfigurationError("theta must be non-negative")
        if r_neighbour < 0:
            raise ConfigurationError("r_neighbour must be non-negative")
        if n_crit < 1:
            raise ConfigurationError("n_crit must be >= 1")
        self.eps = float(eps)
        self.theta = float(theta)
        self.r_neighbour = float(r_neighbour)
        self.leaf_size = int(leaf_size)
        self.walk = resolve_walk_mode(walk)
        self.n_crit = int(n_crit)
        self.counter = InteractionCounter()
        if engine is None:
            from ..accel import get_engine

            engine = get_engine()
        self.engine = engine
        #: trees built over the run (== force calls; the far-field cost)
        self.builds = 0
        #: cumulative direct near-field pair count (the collisional work)
        self.near_interactions = 0
        #: cumulative tree-walk interaction count (pp + node terms)
        self.far_interactions = 0
        #: wall seconds spent in tree build + walk / in the direct sum
        self.tree_seconds = 0.0
        self.direct_seconds = 0.0
        #: the tree phase split out: construction vs. walk+evaluate
        self.build_seconds = 0.0
        self.walk_seconds = 0.0
        self.observe(NULL_OBS)

    # -- observability -----------------------------------------------------

    def observe(self, obs) -> None:
        """Bind the ``hybrid.*`` metric family and tracer to ``obs``."""
        self._tracer = getattr(obs, "tracer", NULL_OBS.tracer)
        metrics = getattr(obs, "metrics", obs)
        self._c_builds = metrics.counter("hybrid.tree_builds_total")
        self._c_near = metrics.counter("hybrid.near_interactions_total")
        self._c_far = metrics.counter("hybrid.far_interactions_total")
        self._c_tree_s = metrics.counter("hybrid.tree_seconds")
        self._c_direct_s = metrics.counter("hybrid.direct_seconds")
        self._c_build_s = metrics.counter("hybrid.tree_build_seconds")
        self._c_walk_s = metrics.counter("hybrid.tree_walk_seconds")
        self._c_groups = metrics.counter("hybrid.walk.groups_total")
        self._c_node_terms = metrics.counter("hybrid.walk.node_terms_total")
        self._c_pp_terms = metrics.counter("hybrid.walk.pp_terms_total")
        self._h_group_size = metrics.histogram("hybrid.walk.group_size")
        self._h_nb_count = metrics.histogram("hybrid.neighbour_count")
        self._g_theta = metrics.gauge("hybrid.theta")
        self._g_theta.set(self.theta)

    # -- ForceBackend protocol --------------------------------------------

    def load(self, system) -> None:
        return None

    def forces_on(self, system, active: np.ndarray, t_now: float):
        active = np.asarray(active)
        n = system.n
        predict_system(system, t_now)
        h_eff = np.where(system.h_nb > 0.0, system.h_nb, self.r_neighbour)
        h_act = h_eff[active]
        pos_i = system.pred_pos[active]
        vel_i = system.pred_vel[active]

        with self._tracer.span("hybrid.tree", n_active=int(active.size)):
            t0 = perf_counter()
            with self._tracer.span("tree.build", n=int(n)):
                tree = Octree(
                    system.pred_pos, system.mass,
                    vel=system.pred_vel, leaf_size=self.leaf_size,
                )
            dt_build = perf_counter() - t0
            t0 = perf_counter()
            with self._tracer.span("tree.walk", walk=self.walk):
                acc, jerk = tree.accelerations(
                    pos_i,
                    theta=self.theta,
                    eps=self.eps,
                    vel_i=vel_i,
                    exclude_self=active.astype(np.int64),
                    h_i=h_act,
                    walk=self.walk,
                    n_crit=self.n_crit,
                    engine=self.engine,
                )
            dt_walk = perf_counter() - t0
        dt_tree = dt_build + dt_walk
        far = int(tree.stats.total_interactions)

        t0 = perf_counter()
        with self._tracer.span("hybrid.direct", n_active=int(active.size)):
            # the same strict range predicate neighbour_search answers
            # (dr = source - sink, unsoftened dist2 < h**2, self masked
            # to inf), evaluated as one boolean matrix — no per-sink
            # list plumbing on the hot path
            dr = system.pred_pos[None, :, :] - pos_i[:, None, :]
            dist2 = np.einsum("ijk,ijk->ij", dr, dr)
            dist2[np.arange(active.size), active] = np.inf
            within = dist2 < h_act[:, None] ** 2
            near = int(within.sum())
            union = np.flatnonzero(within.any(axis=0))
            if union.size:
                include = within[:, union]
                acc_near, jerk_near = self.engine.acc_jerk_masked(
                    pos_i, vel_i,
                    system.pred_pos[union], system.pred_vel[union],
                    system.mass[union], self.eps, include,
                )
                # fixed accumulation order (far += near), part of the
                # serial/threaded bit-identity contract
                acc += acc_near
                jerk += jerk_near
        dt_direct = perf_counter() - t0

        self.builds += 1
        self.near_interactions += near
        self.far_interactions += far
        self.tree_seconds += dt_tree
        self.direct_seconds += dt_direct
        self.build_seconds += dt_build
        self.walk_seconds += dt_walk
        self._c_builds.inc()
        self._c_near.inc(near)
        self._c_far.inc(far)
        self._c_tree_s.inc(dt_tree)
        self._c_direct_s.inc(dt_direct)
        self._c_build_s.inc(dt_build)
        self._c_walk_s.inc(dt_walk)
        wstats = tree.walk_stats
        if wstats is not None:
            self._c_groups.inc(wstats.n_groups)
            self._c_node_terms.inc(wstats.node_terms)
            self._c_pp_terms.inc(wstats.pp_terms)
            for size in wstats.group_sizes:
                self._h_group_size.observe(float(size))
        if active.size:
            self._h_nb_count.observe(near / active.size)
        # Book the equivalent direct-sum load for cross-backend flop
        # comparability (like TreeBackend); the real split lives in the
        # near/far counters above.
        self.counter.add(active.size, n, with_jerk=True)
        return acc, jerk

    def push_updates(self, system, active: np.ndarray) -> None:
        return None

    def potential(self, system) -> np.ndarray:
        # Diagnostics use the exact mutual potential so energy-drift
        # figures measure force-split error, not a second approximation.
        n = system.n
        return self.engine.pairwise_potential(
            system.pos, system.pos, system.mass, self.eps,
            self_indices=np.arange(n),
        )

    # -- neighbour plumbing ------------------------------------------------

    def neighbours_of(self, system, active: np.ndarray, t_now: float, h) -> NeighbourResult:
        """Key-indexed neighbour query at ``t_now``.

        Mirrors ``Grape6Machine.neighbours_of`` so the integrator's
        collision screening can ride the same range query the force
        split already uses.
        """
        active = np.asarray(active)
        predict_system(system, t_now)
        return neighbour_search(
            system.pred_pos[active], system.pred_pos, system.key, h,
            exclude_keys=system.key[active],
        )
