"""Sink grouping and shared-list tree walks (Barnes/Kawai grouping).

The GRAPE tree codes of Fukushige & Kawai amortise the host-side tree
walk by descending once per *group* of nearby sinks instead of once
per sink, then shipping the shared interaction list to the force
pipelines.  This module is the host side of that scheme:

* :func:`build_groups` partitions a sink block into spatially coherent
  groups by descending the octree itself — every sink follows its own
  position down the tree until its cell is a leaf or holds at most
  ``n_crit`` of the descending sinks, so groups are exactly tree cells
  (plus a bounding sphere over the group's actual sinks, which is what
  the acceptance test uses);
* :func:`walk_groups` runs one vectorised frontier walk over all
  groups at once and emits, per group, the accepted-node list (ids of
  cells evaluated as multipoles) and the opened-leaf source list
  (particle ids evaluated particle-particle, sorted ascending so the
  evaluation order is canonical).

Group acceptance is conservative: a node of size ``2*half`` at
distance ``dist`` from the group centroid is accepted only when

    ``2*half < theta * (dist - radius)``   (and ``dist > radius``),

so the per-sink criterion ``size < theta * dist_sink`` holds for every
sink in the bounding sphere.  Two carve guards keep the walk exact: a
Chebyshev containment test rejects nodes whose cube could contain any
group sink (their monopole would swallow the sink's own mass), and —
when neighbour spheres are active — a clearance test
``(cdist - radius) > h_max + sqrt(3)*half`` accepts only nodes wholly
outside *every* sink's sphere, so the near/far split stays bitwise
exact at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...baselines.tree import _POPCOUNT, _SQRT3, concat_ranges

__all__ = ["SinkGroups", "InteractionLists", "build_groups", "walk_groups"]


@dataclass
class SinkGroups:
    """A partition of a sink block into spatially coherent groups.

    ``order`` lists sink row indices grouped contiguously; group ``g``
    owns ``order[ptr[g]:ptr[g+1]]``.  ``centroid``/``radius`` bound the
    group's sinks (Euclidean ball), ``h_max`` is the largest neighbour
    radius in the group (``None`` when spheres are off).
    """

    order: np.ndarray
    ptr: np.ndarray
    centroid: np.ndarray
    radius: np.ndarray
    h_max: np.ndarray | None

    @property
    def n_groups(self) -> int:
        return self.ptr.shape[0] - 1

    @property
    def sizes(self) -> np.ndarray:
        return np.diff(self.ptr)

    def rows(self, g: int) -> np.ndarray:
        """Sink rows of group ``g``."""
        return self.order[self.ptr[g] : self.ptr[g + 1]]


@dataclass
class InteractionLists:
    """Per-group shared interaction lists (CSR over groups).

    Group ``g`` evaluates node multipoles
    ``node_idx[node_ptr[g]:node_ptr[g+1]]`` and particle-particle
    sources ``pp_idx[pp_ptr[g]:pp_ptr[g+1]]`` (ascending particle ids).
    """

    node_ptr: np.ndarray
    node_idx: np.ndarray
    pp_ptr: np.ndarray
    pp_idx: np.ndarray

    def nodes(self, g: int) -> np.ndarray:
        return self.node_idx[self.node_ptr[g] : self.node_ptr[g + 1]]

    def sources(self, g: int) -> np.ndarray:
        return self.pp_idx[self.pp_ptr[g] : self.pp_ptr[g + 1]]


def build_groups(tree, pos_i, h_i=None, n_crit: int = 32) -> SinkGroups:
    """Partition sinks into tree-cell groups of at most ``n_crit``.

    Every sink descends from the root toward its own position; a sink
    stops when its cell is a leaf, when at most ``n_crit`` of the
    still-descending sinks share the cell, or when the cell has no
    child in the sink's octant (possible when sinks are predicted
    positions that drifted outside the cells their particles were
    sorted into — the sink just keeps the coarser cell).
    """
    n_i = pos_i.shape[0]
    if n_crit < 1:
        raise ValueError("n_crit must be >= 1")
    cell = np.zeros(n_i, dtype=np.int64)
    live = np.arange(n_i, dtype=np.int64)
    masks = tree.octant_masks
    for _ in range(70):  # tree depth is capped at 61
        if live.size == 0:
            break
        cv = cell[live]
        internal = tree.node_leaf_start[cv] < 0
        _, uinv, ucnt = np.unique(cv, return_inverse=True, return_counts=True)
        move = internal & (ucnt[uinv] > n_crit)
        movers = live[move]
        if movers.size == 0:
            break
        mv = cv[move]
        ctr = tree.node_center[mv]
        octant = (
            (pos_i[movers, 0] > ctr[:, 0]).astype(np.int64)
            + 2 * (pos_i[movers, 1] > ctr[:, 1]).astype(np.int64)
            + 4 * (pos_i[movers, 2] > ctr[:, 2]).astype(np.int64)
        )
        bit = (1 << octant).astype(np.uint8)
        mask = masks[mv]
        exists = (mask & bit) != 0
        rank = _POPCOUNT[mask & (bit - 1).astype(np.uint8)]
        cell[movers[exists]] = tree.node_first_child[mv[exists]] + rank[exists]
        live = movers[exists]  # stuck sinks keep their cell and stop

    _, uinv = np.unique(cell, return_inverse=True)
    order = np.argsort(uinv, kind="stable").astype(np.int64)
    sizes = np.bincount(uinv)
    ptr = np.concatenate(([0], np.cumsum(sizes)))

    gpos = pos_i[order]
    centroid = np.add.reduceat(gpos, ptr[:-1], axis=0) / sizes[:, None]
    d = gpos - np.repeat(centroid, sizes, axis=0)
    d2 = np.einsum("ij,ij->i", d, d)
    radius = np.sqrt(np.maximum.reduceat(d2, ptr[:-1]))
    h_max = None if h_i is None else np.maximum.reduceat(h_i[order], ptr[:-1])
    return SinkGroups(order=order, ptr=ptr, centroid=centroid,
                      radius=radius, h_max=h_max)


def walk_groups(tree, groups: SinkGroups, theta: float) -> InteractionLists:
    """One vectorised frontier walk shared by all groups.

    The frontier is a flat array of (group, node) pairs expanded level
    by level with ``np.repeat`` over the tree's contiguous child
    ranges — no Python per-node work.  ``theta = 0`` accepts nothing
    (``2*half < 0`` never holds), so every group's source list is all
    particles and the walk degenerates to exact summation.
    """
    n_groups = groups.n_groups
    g = np.arange(n_groups, dtype=np.int64)
    v = np.zeros(n_groups, dtype=np.int64)
    acc_g: list[np.ndarray] = []
    acc_v: list[np.ndarray] = []
    leaf_g: list[np.ndarray] = []
    leaf_v: list[np.ndarray] = []
    while g.size:
        com = tree.node_com[v]
        gc = groups.centroid[g]
        d = com - gc
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        half = tree.node_half[v]
        is_leaf = tree.node_leaf_start[v] >= 0
        margin = dist - groups.radius[g]
        accept = ~is_leaf & (margin > 0.0) & (2.0 * half < theta * margin)
        if np.any(accept):
            delta = gc - tree.node_center[v]
            cheb = np.abs(delta).max(axis=1)
            accept &= cheb > half + groups.radius[g]
            if groups.h_max is not None:
                cdist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
                accept &= (cdist - groups.radius[g]) > (
                    groups.h_max[g] + _SQRT3 * half
                )
        if np.any(accept):
            acc_g.append(g[accept])
            acc_v.append(v[accept])
        if np.any(is_leaf):
            leaf_g.append(g[is_leaf])
            leaf_v.append(v[is_leaf])
        expand = ~accept & ~is_leaf
        if np.any(expand):
            en = v[expand]
            reps = tree.node_n_children[en]
            g = np.repeat(g[expand], reps)
            v = concat_ranges(tree.node_first_child[en], reps)
        else:
            break

    def _csr(keys: np.ndarray, vals: np.ndarray, presorted: bool):
        if not presorted:
            order = np.argsort(keys, kind="stable")
            keys, vals = keys[order], vals[order]
        ptr = np.concatenate(
            ([0], np.cumsum(np.bincount(keys, minlength=n_groups)))
        )
        return ptr, vals

    if acc_g:
        node_ptr, node_idx = _csr(
            np.concatenate(acc_g), np.concatenate(acc_v), presorted=False
        )
    else:
        node_ptr = np.zeros(n_groups + 1, dtype=np.int64)
        node_idx = np.empty(0, dtype=np.int64)

    if leaf_g:
        lg = np.concatenate(leaf_g)
        lv = np.concatenate(leaf_v)
        counts = tree.node_leaf_count[lv]
        flat_g = np.repeat(lg, counts)
        flat_src = tree.leaf_perm[
            concat_ranges(tree.node_leaf_start[lv], counts)
        ]
        # canonical evaluation order: group-major, ascending particle id
        # (at theta=0 each group's list is exactly arange(n), so bulk
        # evaluation is bit-identical to the direct sum)
        order = np.lexsort((flat_src, flat_g))
        pp_ptr, pp_idx = _csr(flat_g[order], flat_src[order], presorted=True)
    else:
        pp_ptr = np.zeros(n_groups + 1, dtype=np.int64)
        pp_idx = np.empty(0, dtype=np.int64)

    return InteractionLists(node_ptr=node_ptr, node_idx=node_idx,
                            pp_ptr=pp_ptr, pp_idx=pp_idx)
