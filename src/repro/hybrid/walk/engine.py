"""Bulk evaluation of grouped-walk interaction lists via ``repro.accel``.

:func:`grouped_accelerations` is the drop-in vectorised replacement
for the per-sink octree walk: group the sinks
(:func:`~repro.hybrid.walk.groups.build_groups`), walk once per group
(:func:`~repro.hybrid.walk.groups.walk_groups`), then evaluate each
group's shared lists in two bulk kernel calls — accepted-node
multipoles through :meth:`KernelEngine.node_force` and opened-leaf
sources through :meth:`KernelEngine.acc_jerk` /
:meth:`~KernelEngine.acc_jerk_masked`.

Exactness contracts (tested):

* the kernel is pinned to the ``accel`` implementation for every call,
  so results do not depend on group sizes (the size heuristic would
  route small groups to the ``reference`` kernels, whose low-order
  bits differ) and serial ≡ threaded stays bit-identical through the
  engine's fixed-order reduction;
* per-sink neighbour spheres and self-exclusion are applied at
  *evaluation* (mask / self-index), never at acceptance, so the
  near/far partition is bitwise the complement of
  ``neighbour_search``'s ``dist2 < h**2`` predicate;
* at ``theta = 0`` nothing is accepted, every group's source list is
  all particles in ascending order, and each group's ``acc_jerk`` call
  is a row-subset of the full direct call — bit-identical to direct
  summation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .groups import build_groups, walk_groups

__all__ = ["WalkStats", "grouped_accelerations"]


@dataclass
class WalkStats:
    """Counters of one grouped walk (exposed as ``hybrid.walk.*``)."""

    n_groups: int = 0
    node_terms: int = 0  # sum over groups of |sinks| * |node list|
    pp_terms: int = 0  # sum over groups of |sinks| * |pp list|
    group_sizes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))


def grouped_accelerations(
    tree,
    pos_i: np.ndarray,
    theta: float,
    eps: float,
    vel_i: np.ndarray | None = None,
    exclude_self: np.ndarray | None = None,
    h_i: np.ndarray | None = None,
    n_crit: int = 32,
    engine=None,
):
    """Tree forces for a sink block via grouped walks + bulk kernels.

    Arguments mirror :meth:`repro.baselines.tree.Octree.accelerations`
    (which normalises them before delegating here); ``vel_i=None``
    evaluates accelerations only and returns ``jerk=None``.

    Returns ``(acc, jerk_or_None, WalkStats)``.
    """
    if engine is None:
        from ...accel import get_engine

        engine = get_engine()
    n_i = pos_i.shape[0]
    want_jerk = tree.vel is not None and vel_i is not None
    acc = np.zeros((n_i, 3))
    jerk = np.zeros((n_i, 3)) if want_jerk else None
    stats = WalkStats()
    if n_i == 0:
        return acc, jerk, stats

    # sinks without velocities still go through the acc+jerk kernels
    # (the node-monopole jerk falls out of the same tile); the jerk
    # outputs are simply dropped
    vi_all = vel_i if want_jerk else np.zeros((n_i, 3))
    src_vel = tree.vel if tree.vel is not None else np.zeros_like(tree.pos)

    groups = build_groups(tree, pos_i, h_i=h_i, n_crit=n_crit)
    lists = walk_groups(tree, groups, theta)
    stats.n_groups = groups.n_groups
    stats.group_sizes = groups.sizes

    node_mass = tree.node_mass[:, None]
    node_vel = np.divide(
        tree.node_mom, node_mass,
        out=np.zeros_like(tree.node_mom), where=node_mass > 0,
    )

    for g in range(groups.n_groups):
        rows = groups.rows(g)
        pi = pos_i[rows]
        vi = vi_all[rows]
        a_g = None
        j_g = None

        nodes = lists.nodes(g)
        if nodes.size:
            quad = tree.node_quad[nodes] if tree.quadrupole else None
            a_g, j_g = engine.node_force(
                pi, vi, tree.node_com[nodes], node_vel[nodes],
                tree.node_mass[nodes], eps, quad_j=quad, kernel="accel",
            )
            stats.node_terms += rows.size * nodes.size

        src = lists.sources(g)
        if src.size:
            sp = tree.pos[src]
            if h_i is None:
                self_idx = None
                if exclude_self is not None:
                    # position of each sink's own particle in the sorted
                    # source list; -1 = not present (never matches)
                    pos_in = np.searchsorted(src, exclude_self[rows])
                    pos_in = np.clip(pos_in, 0, src.size - 1)
                    present = src[pos_in] == exclude_self[rows]
                    self_idx = np.where(present, pos_in, -1)
                pa, pj = engine.acc_jerk(
                    pi, vi, sp, src_vel[src], tree.mass[src], eps,
                    self_indices=self_idx, kernel="accel",
                )
            else:
                # evaluation-time neighbour carve: identical unsoftened
                # distance bits as neighbour_search's range predicate,
                # so near+far is an exact partition
                dr = sp[None, :, :] - pi[:, None, :]
                dist2 = np.einsum("ijk,ijk->ij", dr, dr)
                include = ~(dist2 < h_i[rows][:, None] ** 2)
                if exclude_self is not None:
                    pos_in = np.searchsorted(src, exclude_self[rows])
                    pos_in = np.clip(pos_in, 0, src.size - 1)
                    present = src[pos_in] == exclude_self[rows]
                    hit = np.flatnonzero(present)
                    include[hit, pos_in[hit]] = False
                pa, pj = engine.acc_jerk_masked(
                    pi, vi, sp, src_vel[src], tree.mass[src], eps,
                    include, kernel="accel",
                )
            stats.pp_terms += rows.size * src.size
            if a_g is None:
                a_g, j_g = pa, pj
            else:
                a_g = a_g + pa
                j_g = j_g + pj

        if a_g is not None:
            acc[rows] = a_g
            if want_jerk:
                jerk[rows] = j_g

    return acc, jerk, stats
