"""repro.hybrid.walk — vectorised grouped-walk tree-force engine.

Fukushige & Kawai's GRAPE tree scheme in NumPy: partition sinks into
spatially coherent groups along the octree itself
(:func:`build_groups`), run one array-based frontier walk per group
with conservative bounding-sphere acceptance (:func:`walk_groups`),
and evaluate the shared interaction lists in bulk through the
:mod:`repro.accel` kernel engine (:func:`grouped_accelerations`).

This is the walk :meth:`repro.baselines.tree.Octree.accelerations`
uses by default (``walk="grouped"`` / ``REPRO_TREE_WALK=grouped``);
``walk="persink"`` keeps the legacy per-sink frontier for comparison.
"""

from .engine import WalkStats, grouped_accelerations
from .groups import InteractionLists, SinkGroups, build_groups, walk_groups

__all__ = [
    "SinkGroups",
    "InteractionLists",
    "WalkStats",
    "build_groups",
    "walk_groups",
    "grouped_accelerations",
]
