"""Block individual-timestep scheduler.

The scheduler owns the "which particles move next" logic of the block
timestep algorithm ([McM86, Mak91]): every particle has a next update
time :math:`t_i + \\Delta t_i`; the system time advances to the minimum
of these, and *all* particles sharing that minimum form the active block
integrated in parallel.  Because steps are powers of two of a common
base (see :mod:`repro.core.timestep`), many particles share update times
and blocks are large enough to fill parallel hardware — the paper's
Section 4.2 discusses exactly this property (and its limits: "the
average number of particles which can be integrated in parallel might be
as few as one hundred or less, even for N = 1e5 or larger").

:class:`BlockStats` records the block-size distribution, which the
BLOCK-PAR benchmark uses to reproduce that claim quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SchedulerError

__all__ = ["BlockStats", "BlockScheduler"]


@dataclass
class BlockStats:
    """Accumulated statistics of scheduled blocks."""

    n_blocks: int = 0
    n_particle_steps: int = 0
    min_block: int = 0
    max_block: int = 0
    #: Histogram of block sizes keyed by size (kept exact; block-size
    #: diversity is small because sizes correlate with the level grid).
    size_counts: dict = field(default_factory=dict)

    def record(self, size: int) -> None:
        """Record one scheduled block of ``size`` particles."""
        size = int(size)
        self.n_blocks += 1
        self.n_particle_steps += size
        self.min_block = size if self.n_blocks == 1 else min(self.min_block, size)
        self.max_block = max(self.max_block, size)
        self.size_counts[size] = self.size_counts.get(size, 0) + 1

    @property
    def mean_block(self) -> float:
        """Average particles per block (the hardware-parallelism measure)."""
        return self.n_particle_steps / self.n_blocks if self.n_blocks else 0.0

    def median_block(self) -> float:
        """Median block size over all scheduled blocks."""
        if not self.size_counts:
            return 0.0
        sizes = np.array(sorted(self.size_counts))
        counts = np.array([self.size_counts[s] for s in sizes])
        cum = np.cumsum(counts)
        half = cum[-1] / 2.0
        return float(sizes[np.searchsorted(cum, half)])

    def size_histogram(self, n_bins: int = 8) -> list[tuple[int, int, int]]:
        """Logarithmic block-size histogram: ``(lo, hi, count)`` rows.

        Useful for reporting block-structure fragmentation compactly
        (the BLOCK-PAR benchmark prints it for large runs).
        """
        if not self.size_counts:
            return []
        lo = max(1, self.min_block)
        hi = max(lo + 1, self.max_block)
        edges = np.unique(
            np.geomspace(lo, hi + 1, n_bins + 1).astype(np.int64)
        )
        rows = []
        for a, b in zip(edges[:-1], edges[1:]):
            count = sum(c for s, c in self.size_counts.items() if a <= s < b)
            rows.append((int(a), int(b) - 1, count))
        return rows

    def reset(self) -> None:
        self.n_blocks = 0
        self.n_particle_steps = 0
        self.min_block = 0
        self.max_block = 0
        self.size_counts.clear()


class BlockScheduler:
    """Selects the next active block from per-particle times and steps.

    The scheduler is deliberately stateless with respect to particle data
    (it reads ``system.t`` and ``system.dt`` each call) so that particle
    removal/addition by the integrator cannot desynchronise it.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) feeds the
    ``scheduler.block_size`` histogram; disabled by default via the null
    registry.
    """

    def __init__(self, metrics=None) -> None:
        from ..obs import NULL_REGISTRY

        self.stats = BlockStats()
        # explicit None test: an empty registry is falsy (len() == 0)
        registry = NULL_REGISTRY if metrics is None else metrics
        self._h_block = registry.histogram("scheduler.block_size")

    def next_block(self, t: np.ndarray, dt: np.ndarray) -> tuple[float, np.ndarray]:
        """Return ``(t_next, active_indices)`` for the earliest block.

        ``t_next`` is the minimum of ``t + dt`` and ``active_indices`` the
        (sorted) indices of every particle whose update time equals it.

        Raises
        ------
        SchedulerError
            If any step is non-positive or times are non-finite.
        """
        t_next_all = t + dt
        if not np.all(np.isfinite(t_next_all)):
            raise SchedulerError("non-finite update time in scheduler")
        if np.any(dt <= 0.0):
            raise SchedulerError("non-positive timestep in scheduler")
        t_next = float(t_next_all.min())
        # Exact comparison is safe: block times are sums of powers of two
        # on a shared grid, which are exactly representable.
        active = np.nonzero(t_next_all == t_next)[0]
        if active.size == 0:  # pragma: no cover - defensive
            raise SchedulerError("empty active block")
        self.stats.record(active.size)
        self._h_block.observe(active.size)
        return t_next, active

    def peek_time(self, t: np.ndarray, dt: np.ndarray) -> float:
        """The next update time without recording a block."""
        return float((t + dt).min())
