"""Block individual-timestep Hermite integration driver.

This module implements the *host side* of the paper's computation
(Section 4.1): the driver owns the particle state, the block scheduler
and the Hermite corrector, and delegates the :math:`O(N)`-per-particle
force loop to a pluggable :class:`~repro.core.backends.ForceBackend`
(host direct summation, the GRAPE-6 simulator, or the tree baseline).

One block step (:meth:`Simulation.step`) is:

1. ask the scheduler for the earliest update time ``t`` and the block of
   active particles;
2. predict the active particles to ``t`` on the host (sources are
   predicted inside the backend — on GRAPE-6, by the on-chip predictor
   pipelines);
3. obtain mutual force + jerk on the block from the backend and add the
   analytic solar field;
4. apply the Hermite corrector, update state, choose new quantised
   timesteps;
5. push the corrected particles back to the backend (on GRAPE-6, a
   j-memory write over the host interface).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConfigurationError, IntegrationError
from .backends import ForceBackend
from .events import EventLog
from .hermite import correct
from .particles import ParticleSystem
from .predictor import predict_positions, predict_velocities
from .scheduler import BlockScheduler
from .timestep import TimestepParams, aarseth_dt, quantize, startup_dt

__all__ = ["Simulation"]


class Simulation:
    """Block-timestep Hermite N-body simulation.

    Parameters
    ----------
    system:
        Initial particle state (all particles at one common time).
    backend:
        Force engine; see :mod:`repro.core.backends`.
    external_field:
        Optional analytic field (the Sun); see :mod:`repro.core.external`.
    timestep_params:
        Timestep-control knobs; defaults are sensible for planetesimal
        discs in code units.

    Attributes
    ----------
    time:
        Current system time (the time of the most recent block).
    block_steps:
        Number of block steps taken.
    particle_steps:
        Total per-particle steps (the paper's "number of individual
        steps", 5.3e11 for the production run).
    """

    def __init__(
        self,
        system: ParticleSystem,
        backend: ForceBackend,
        external_field=None,
        timestep_params: TimestepParams | None = None,
        collision_policy=None,
        corrector_iterations: int = 1,
        obs=None,
        _restart: bool = False,
    ) -> None:
        from ..obs import NULL_OBS

        if not isinstance(backend, ForceBackend):
            raise ConfigurationError("backend must implement ForceBackend")
        if corrector_iterations < 1:
            raise ConfigurationError("corrector_iterations must be >= 1")
        t0 = system.t
        # A checkpointed system is at a block *boundary*, not a common
        # time — individual particle times legitimately differ there.
        if not _restart and not np.allclose(t0, t0[0]):
            raise ConfigurationError("all particles must start at a common time")
        self.system = system
        self.backend = backend
        self.external_field = external_field
        self.params = timestep_params or TimestepParams()
        self.collision_policy = collision_policy
        #: P(EC)^n mode (Kokubo, Yoshinaga & Makino 1998): re-evaluating
        #: the force at the corrected state makes the scheme (nearly)
        #: time-symmetric, suppressing secular energy drift.  Each extra
        #: iteration costs one more full force evaluation per block.
        self.corrector_iterations = int(corrector_iterations)
        #: Observability bundle (:mod:`repro.obs`); the null default
        #: keeps all instrumentation at one-attribute-lookup cost.
        self.obs = obs or NULL_OBS
        self._tracer = self.obs.tracer
        self._c_blocks = self.obs.metrics.counter("blockstep.total")
        self._c_psteps = self.obs.metrics.counter("blockstep.active_particles")
        self.scheduler = BlockScheduler(metrics=self.obs.metrics)
        self.events = EventLog(metrics=self.obs.metrics)
        # Route the backend's kernel engine (repro.accel) into the same
        # metrics registry so kernel.* shows up in run exports.  Only an
        # enabled bundle is attached — a NULL obs must not detach an
        # engine someone instrumented explicitly.
        engine = getattr(backend, "engine", None) or getattr(
            getattr(backend, "machine", None), "engine", None
        )
        if engine is not None and self.obs.enabled:
            engine.observe(self.obs)
        # Backends with their own metric families (e.g. the hybrid's
        # ``hybrid.*`` tree/direct split) bind here the same way.
        if self.obs.enabled and hasattr(backend, "observe"):
            backend.observe(self.obs)
        self.time = float(t0[0])
        self.block_steps = 0
        self.particle_steps = 0
        self.mergers = 0
        self._initialized = False

    # -- setup -----------------------------------------------------------

    @classmethod
    def from_restart(
        cls,
        system: ParticleSystem,
        backend: ForceBackend,
        time: float,
        *,
        external_field=None,
        timestep_params: TimestepParams | None = None,
        collision_policy=None,
        corrector_iterations: int = 1,
        obs=None,
        block_steps: int = 0,
        particle_steps: int = 0,
        mergers: int = 0,
    ) -> "Simulation":
        """Rebuild a running simulation from checkpointed state.

        ``system`` must carry the exact checkpointed ``pos/vel/acc/jerk/
        t/dt`` arrays (a raw snapshot, *not* a predicted state).  The
        scheduler is stateless — it reads ``system.t`` and ``system.dt``
        each block — so continuing from here is bit-identical to a run
        that was never interrupted.  :meth:`initialize` must not be
        called again (it would re-seed timesteps and break determinism);
        the backend is loaded here instead.
        """
        sim = cls(
            system,
            backend,
            external_field=external_field,
            timestep_params=timestep_params,
            collision_policy=collision_policy,
            corrector_iterations=corrector_iterations,
            obs=obs,
            _restart=True,
        )
        sim.time = float(time)
        sim.block_steps = int(block_steps)
        sim.particle_steps = int(particle_steps)
        sim.mergers = int(mergers)
        backend.load(system)
        sim._initialized = True
        return sim

    def initialize(self) -> None:
        """Startup force evaluation and initial timestep assignment."""
        sys_ = self.system
        n = sys_.n
        self.backend.load(sys_)
        all_idx = np.arange(n)
        acc, jerk = self.backend.forces_on(sys_, all_idx, self.time)
        if self.external_field is not None:
            ea, ej = self.external_field.acc_jerk(sys_.pos, sys_.vel)
            acc = acc + ea
            jerk = jerk + ej
        sys_.acc[...] = acc
        sys_.jerk[...] = jerk
        dt_raw = startup_dt(acc, jerk, self.params.eta_start)
        sys_.dt[...] = quantize(dt_raw, sys_.t, None, self.params)
        self._initialized = True

    # -- stepping ---------------------------------------------------------

    def step(self) -> tuple[float, int]:
        """Advance one block; returns ``(new_time, block_size)``."""
        if not self._initialized:
            raise IntegrationError("call initialize() before stepping")
        tracer = self._tracer
        with tracer.span("block_step"):
            sys_ = self.system
            t_next, active = self.scheduler.next_block(sys_.t, sys_.dt)
            dt = sys_.dt[active]

            # Host-side prediction of the i-particles.
            with tracer.span("predict"):
                pred_pos = predict_positions(
                    sys_.pos[active], sys_.vel[active],
                    sys_.acc[active], sys_.jerk[active], dt,
                )
                pred_vel = predict_velocities(
                    sys_.vel[active], sys_.acc[active], sys_.jerk[active], dt
                )

            acc0 = sys_.acc[active].copy()
            jerk0 = sys_.jerk[active].copy()

            with tracer.span("force", n_active=int(active.size)):
                acc1, jerk1 = self.backend.forces_on(sys_, active, t_next)
                if self.external_field is not None:
                    ea, ej = self.external_field.acc_jerk(pred_pos, pred_vel)
                    acc1 = acc1 + ea
                    jerk1 = jerk1 + ej

            with tracer.span("correct"):
                pos1, vel1, derivs = correct(
                    pred_pos, pred_vel, acc0, jerk0, acc1, jerk1, dt
                )

                # P(EC)^n: re-evaluate the force at the corrected state and
                # correct again (writes the trial state into the live rows so
                # mutually active particles see each other's corrected states).
                for _ in range(self.corrector_iterations - 1):
                    sys_.pos[active] = pos1
                    sys_.vel[active] = vel1
                    sys_.t[active] = t_next
                    acc1, jerk1 = self.backend.forces_on(sys_, active, t_next)
                    if self.external_field is not None:
                        ea, ej = self.external_field.acc_jerk(pos1, vel1)
                        acc1 = acc1 + ea
                        jerk1 = jerk1 + ej
                    pos1, vel1, derivs = correct(
                        pred_pos, pred_vel, acc0, jerk0, acc1, jerk1, dt
                    )

                if not (np.all(np.isfinite(pos1)) and np.all(np.isfinite(vel1))):
                    raise IntegrationError(f"non-finite state after block at t={t_next}")

                sys_.pos[active] = pos1
                sys_.vel[active] = vel1
                sys_.acc[active] = acc1
                sys_.jerk[active] = jerk1
                sys_.t[active] = t_next

                dt_raw = aarseth_dt(
                    acc1, jerk1, derivs.snap, derivs.crackle, self.params.eta
                )
                sys_.dt[active] = quantize(dt_raw, sys_.t[active], dt, self.params)

            with tracer.span("push_updates"):
                self.backend.push_updates(sys_, active)
            self.time = t_next
            self.block_steps += 1
            self.particle_steps += int(active.size)
            self._c_blocks.inc()
            self._c_psteps.inc(active.size)

            if self.collision_policy is not None:
                with tracer.span("collision"):
                    self._resolve_collisions(t_next, active)
        return t_next, int(active.size)

    def evolve(
        self,
        t_end: float,
        callback: Callable[["Simulation"], None] | None = None,
        max_block_steps: int | None = None,
    ) -> None:
        """Advance until no block time remains at or below ``t_end``.

        ``callback`` (if given) runs after every block step; use
        :meth:`predicted_state` inside it for output at the current time.
        ``max_block_steps`` bounds runtime in tests.
        """
        if not self._initialized:
            self.initialize()
        steps = 0
        # read self.system each iteration: mergers replace the object
        while self.scheduler.peek_time(self.system.t, self.system.dt) <= t_end:
            self.step()
            if callback is not None:
                callback(self)
            steps += 1
            if max_block_steps is not None and steps >= max_block_steps:
                break

    # -- synchronisation / output -----------------------------------------

    def predicted_state(self, t: float | None = None) -> ParticleSystem:
        """A copy of the system predicted to one common time.

        Prediction is the 3rd-order Taylor expansion, accurate to the same
        order as the integration error for output purposes.  Defaults to
        the current system time.
        """
        sys_ = self.system
        t = self.time if t is None else float(t)
        dt = t - sys_.t
        if np.any(dt < -1e-12):
            raise IntegrationError("cannot predict backwards past particle times")
        out = sys_.copy()
        out.pos = predict_positions(sys_.pos, sys_.vel, sys_.acc, sys_.jerk, dt)
        out.vel = predict_velocities(sys_.vel, sys_.acc, sys_.jerk, dt)
        out.t[...] = t
        out.pred_pos = out.pos.copy()
        out.pred_vel = out.vel.copy()
        return out

    def synchronize(self, t: float | None = None) -> None:
        """Bring every particle to a common time with full corrector quality.

        Performs a genuine Hermite step of individual length ``t - t_i``
        for every particle (the classical synchronisation step of NBODY
        codes), then re-seeds timesteps with the startup criterion.  Use
        before precise energy measurements; :meth:`predicted_state` is
        cheaper for snapshots.
        """
        if not self._initialized:
            raise IntegrationError("call initialize() before synchronize()")
        sys_ = self.system
        t = float(self.time if t is None else t)
        if np.any(sys_.t > t + 1e-12):
            raise IntegrationError("cannot synchronise to a time in the past")
        pending = np.nonzero(sys_.t < t)[0]
        if pending.size:
            dt = t - sys_.t[pending]
            pred_pos = predict_positions(
                sys_.pos[pending], sys_.vel[pending], sys_.acc[pending], sys_.jerk[pending], dt
            )
            pred_vel = predict_velocities(
                sys_.vel[pending], sys_.acc[pending], sys_.jerk[pending], dt
            )
            acc1, jerk1 = self.backend.forces_on(sys_, pending, t)
            if self.external_field is not None:
                ea, ej = self.external_field.acc_jerk(pred_pos, pred_vel)
                acc1 = acc1 + ea
                jerk1 = jerk1 + ej
            pos1, vel1, _ = correct(
                pred_pos, pred_vel, sys_.acc[pending], sys_.jerk[pending], acc1, jerk1, dt
            )
            sys_.pos[pending] = pos1
            sys_.vel[pending] = vel1
            sys_.acc[pending] = acc1
            sys_.jerk[pending] = jerk1
            sys_.t[pending] = t
            self.backend.push_updates(sys_, pending)
            self.particle_steps += int(pending.size)
            self._c_psteps.inc(pending.size)
        self.time = t
        # Timesteps must be re-seeded: the sync step landed particles on
        # times that may not sit on their old block grid.
        dt_raw = startup_dt(sys_.acc, sys_.jerk, self.params.eta_start)
        sys_.dt[...] = quantize(dt_raw, sys_.t, None, self.params)
        # Only steps whose grid passes through t are admissible.
        self._align_steps_to_time(t)

    # -- escapers ---------------------------------------------------------

    def remove_escapers(self, r_min: float = 50.0, m_central: float = 1.0) -> int:
        """Drop particles on escape orbits; returns how many were removed.

        Production planetesimal runs prune hyperbolic escapers once they
        are far outside the disk (they no longer influence it but, left
        in, they slow the force loop and stretch the spatial dynamic
        range).  Each removal is logged as an ``escape`` event.  The
        system is synchronised by prediction to the current time first
        so the energy test is evaluated at a common epoch.
        """
        from .events import Event, detect_escapers

        if not self._initialized:
            raise IntegrationError("call initialize() before remove_escapers()")
        snap = self.predicted_state(self.time)
        escaping = detect_escapers(snap, m_central=m_central, r_min=r_min)
        if escaping.size == 0:
            return 0
        if escaping.size >= self.system.n:
            raise IntegrationError("refusing to remove every particle")
        for row in escaping:
            r = float(np.linalg.norm(snap.pos[row]))
            self.events.append(
                Event(
                    "escape",
                    float(self.time),
                    int(self.system.key[row]),
                    {"r": r},
                )
            )
        self.system = self.system.remove(escaping)
        self.backend.load(self.system)
        return int(escaping.size)

    # -- collisions / accretion -----------------------------------------

    def _resolve_collisions(self, t_now: float, active: np.ndarray) -> None:
        """Detect and merge overlapping pairs touching the active block.

        Positions are compared at ``t_now`` via prediction; each merger
        is perfect (mass/momentum conserving), logged as a ``merger``
        event, and followed by a force re-evaluation for the survivor.
        Non-survivor neighbours keep their stored forces — the error is
        O(separation^2 / distance^2) and corrected at their next step.
        """
        from .predictor import predict_system

        policy = self.collision_policy
        active_keys = set(int(k) for k in self.system.key[np.asarray(active)])
        for _ in range(64):  # safety cap on chain mergers per block
            sys_ = self.system
            if sys_.n < 2:
                return
            predict_system(sys_, t_now)
            rows = np.nonzero(np.isin(sys_.key, list(active_keys)))[0]
            if rows.size == 0:
                return
            pairs = self._candidate_pairs(rows, t_now)
            if not pairs:
                return
            i, j = pairs[0]
            survivor_key = self._merge_rows(i, j, t_now)
            absorbed = {int(sys_.key[i]), int(sys_.key[j])} - {survivor_key}
            active_keys -= absorbed
            active_keys.add(survivor_key)

    def _candidate_pairs(self, rows: np.ndarray, t_now: float) -> list:
        """Colliding pairs among ``rows`` vs everything, at ``t_now``.

        Uses the backend's neighbour search when available (GRAPE
        backends expose it via their machine — candidate screening
        rides the force pass for free on the real chip — and the
        hybrid backend directly), falling back to the O(n_act x N)
        sweep.  Both paths apply the exact radius test, so the merger
        set is identical.
        """
        from .collisions import find_collision_pairs

        sys_ = self.system
        radii = self.collision_policy.radii(sys_.mass)
        finder = getattr(self.backend, "machine", None)
        if finder is None or not hasattr(finder, "neighbours_of"):
            finder = self.backend if hasattr(self.backend, "neighbours_of") else None
        if finder is not None:
            h = 2.0 * float(radii.max())
            res = finder.neighbours_of(sys_, rows, t_now, h=h)
            key_to_row = {int(k): r for r, k in enumerate(sys_.key)}
            pairs = set()
            for local, row in enumerate(rows):
                for k in res.lists[local]:
                    other = key_to_row[int(k)]
                    d = float(
                        np.linalg.norm(sys_.pred_pos[row] - sys_.pred_pos[other])
                    )
                    if d < radii[row] + radii[other]:
                        pairs.add((min(int(row), other), max(int(row), other)))
            return sorted(pairs)
        return find_collision_pairs(sys_.pred_pos, radii, rows)

    def _merge_rows(self, i: int, j: int, t_now: float) -> int:
        """Perfectly merge rows ``i`` and ``j`` at ``t_now``; returns the
        survivor's key."""
        from .collisions import merge_state
        from .events import Event

        sys_ = self.system
        outcome = merge_state(
            float(sys_.mass[i]), sys_.pred_pos[i], sys_.pred_vel[i], int(sys_.key[i]),
            float(sys_.mass[j]), sys_.pred_pos[j], sys_.pred_vel[j], int(sys_.key[j]),
        )
        survivor_row = i if int(sys_.key[i]) == outcome.survivor_key else j
        absorbed_row = j if survivor_row == i else i

        sys_.mass[survivor_row] = outcome.mass
        sys_.pos[survivor_row] = outcome.pos
        sys_.vel[survivor_row] = outcome.vel
        sys_.t[survivor_row] = t_now
        # the merged body keeps the wider neighbour sphere of the pair
        sys_.h_nb[survivor_row] = max(float(sys_.h_nb[i]), float(sys_.h_nb[j]))

        self.system = sys_.remove(np.array([absorbed_row]))
        self.backend.load(self.system)

        row = int(np.nonzero(self.system.key == outcome.survivor_key)[0][0])
        acc, jerk = self.backend.forces_on(self.system, np.array([row]), t_now)
        if self.external_field is not None:
            ea, ej = self.external_field.acc_jerk(
                self.system.pos[row : row + 1], self.system.vel[row : row + 1]
            )
            acc = acc + ea
            jerk = jerk + ej
        self.system.acc[row] = acc[0]
        self.system.jerk[row] = jerk[0]

        dt_raw = startup_dt(acc, jerk, self.params.eta_start)
        dt_new = quantize(dt_raw, np.array([t_now]), None, self.params)[0]
        # shrink until the step grid passes through t_now
        if t_now != 0.0:
            for _ in range(64):
                ratio = t_now / dt_new
                if np.isclose(ratio, round(ratio), rtol=0.0, atol=1e-9):
                    break
                if dt_new <= self.params.dt_min:
                    break
                dt_new *= 0.5
        self.system.dt[row] = dt_new

        self.events.append(
            Event(
                "merger",
                float(t_now),
                outcome.survivor_key,
                {
                    "absorbed_key": outcome.absorbed_key,
                    "merged_mass": outcome.mass,
                },
            )
        )
        self.mergers += 1
        return outcome.survivor_key

    def _align_steps_to_time(self, t: float) -> None:
        """Shrink steps until ``t`` is commensurate with each step grid."""
        sys_ = self.system
        if t == 0.0:
            return
        dt = sys_.dt.copy()
        for _ in range(64):
            ratio = t / dt
            bad = ~np.isclose(ratio, np.round(ratio), rtol=0.0, atol=1e-9)
            bad &= dt > self.params.dt_min
            if not np.any(bad):
                break
            dt[bad] *= 0.5
        sys_.dt[...] = dt
