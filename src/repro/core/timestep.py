"""Timestep selection and block (power-of-two) quantisation.

The paper's algorithm is the *block individual timestep* scheme
([McM86, Mak91] in the paper): each particle carries its own step, but
steps are forced to powers of two of a base step so that groups
("blocks") of particles share update times and can be advanced in
parallel — on GRAPE-6, fed to the pipelines as one i-particle batch.

Two criteria are implemented:

* the startup criterion ``dt = eta_s * |a| / |j|`` (only the force and
  jerk are known before the first step), and
* the standard **Aarseth criterion**

  .. math::

      \\Delta t = \\sqrt{\\eta\\,
          \\frac{|\\mathbf{a}||\\mathbf{a}^{(2)}| + |\\dot{\\mathbf{a}}|^2}
               {|\\dot{\\mathbf{a}}||\\mathbf{a}^{(3)}| + |\\mathbf{a}^{(2)}|^2}},

  evaluated with end-of-step derivatives from the Hermite corrector.

Block rules enforced by :func:`quantize`:

1. ``dt`` is ``dt_max / 2**k`` for an integer ``k >= 0``;
2. a particle's new time ``t + dt`` must be commensurate with the block
   grid, i.e. a step may only *grow* (double) when the particle's current
   time is divisible by the doubled step;
3. steps never exceed ``dt_max`` nor shrink below ``dt_min``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "TimestepParams",
    "aarseth_dt",
    "startup_dt",
    "quantize",
    "floor_power_of_two",
    "block_level",
]


class TimestepParams:
    """Bundle of timestep-control parameters.

    Parameters
    ----------
    eta:
        Aarseth accuracy parameter for regular steps (typical 0.01–0.05).
    eta_start:
        Accuracy parameter for the startup criterion (usually smaller).
    dt_max:
        Largest allowed step; also the block grid unit.  Must be a power
        of two times ``dt_min``.  The default (1 code time unit, about
        1/560th of an orbit at 20 AU) suits the paper's disk problem.
    dt_min:
        Smallest allowed step (floor to keep close encounters from
        stalling the integration).
    """

    __slots__ = ("eta", "eta_start", "dt_max", "dt_min", "max_level")

    def __init__(
        self,
        eta: float = 0.02,
        eta_start: float = 0.01,
        dt_max: float = 1.0,
        dt_min: float = 2.0**-30,
    ) -> None:
        if eta <= 0 or eta_start <= 0:
            raise ConfigurationError("eta parameters must be positive")
        if dt_max <= 0 or dt_min <= 0 or dt_min > dt_max:
            raise ConfigurationError("need 0 < dt_min <= dt_max")
        ratio = dt_max / dt_min
        level = round(np.log2(ratio))
        if not np.isclose(2.0**level, ratio):
            raise ConfigurationError("dt_max / dt_min must be a power of two")
        self.eta = float(eta)
        self.eta_start = float(eta_start)
        self.dt_max = float(dt_max)
        self.dt_min = float(dt_min)
        self.max_level = int(level)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimestepParams(eta={self.eta}, eta_start={self.eta_start}, "
            f"dt_max={self.dt_max}, dt_min={self.dt_min})"
        )


def _norm(x: np.ndarray) -> np.ndarray:
    return np.linalg.norm(np.atleast_2d(x), axis=1)


def aarseth_dt(
    acc: np.ndarray,
    jerk: np.ndarray,
    snap: np.ndarray,
    crackle: np.ndarray,
    eta: float,
) -> np.ndarray:
    """Aarseth (1985) timestep from force derivatives, shape ``(n,)``.

    Degenerate cases (all derivatives zero, e.g. an isolated unperturbed
    particle) return ``inf`` so the caller's ``dt_max`` cap applies.
    """
    a = _norm(acc)
    j = _norm(jerk)
    s = _norm(snap)
    c = _norm(crackle)
    num = a * s + j**2
    den = j * c + s**2
    with np.errstate(divide="ignore", invalid="ignore"):
        dt = np.sqrt(eta * num / den)
    dt[den == 0.0] = np.inf
    # num == 0 with den > 0 gives dt = 0, which would stall; treat as inf.
    dt[(num == 0.0)] = np.inf
    return dt


def startup_dt(acc: np.ndarray, jerk: np.ndarray, eta_start: float) -> np.ndarray:
    """Initial timestep ``eta_s * |a| / |j|`` (only a, j known at t=0)."""
    a = _norm(acc)
    j = _norm(jerk)
    with np.errstate(divide="ignore", invalid="ignore"):
        dt = eta_start * a / j
    dt[j == 0.0] = np.inf
    dt[a == 0.0] = np.inf
    return dt


def floor_power_of_two(dt: np.ndarray) -> np.ndarray:
    """Largest power of two that is <= each (positive) element of ``dt``."""
    dt = np.asarray(dt, dtype=np.float64)
    out = np.zeros_like(dt)
    pos = dt > 0
    finite = pos & np.isfinite(dt)
    out[finite] = 2.0 ** np.floor(np.log2(dt[finite]))
    out[pos & ~np.isfinite(dt)] = np.inf
    return out


def block_level(dt: np.ndarray, dt_max: float) -> np.ndarray:
    """Block level ``k`` such that ``dt = dt_max / 2**k`` (integer array)."""
    dt = np.asarray(dt, dtype=np.float64)
    return np.round(np.log2(dt_max / dt)).astype(np.int64)


def quantize(
    dt_desired: np.ndarray,
    t_now: np.ndarray,
    dt_current: np.ndarray | None,
    params: TimestepParams,
) -> np.ndarray:
    """Quantise desired steps onto the block grid.

    Parameters
    ----------
    dt_desired:
        Raw criterion output (positive, possibly ``inf``).
    t_now:
        Current times of the particles (after their step), used for the
        commensurability rule.
    dt_current:
        The steps just completed; ``None`` on startup.  A step may at most
        double relative to ``dt_current``, and only when ``t_now`` is
        divisible by the doubled step.

    Returns
    -------
    Quantised steps, each ``dt_max / 2**k`` clipped to
    ``[dt_min, dt_max]``.
    """
    dt_desired = np.asarray(dt_desired, dtype=np.float64)
    t_now = np.asarray(t_now, dtype=np.float64)

    dt = floor_power_of_two(np.clip(dt_desired, params.dt_min, params.dt_max))
    # floor_power_of_two of values within [dt_min, dt_max] stays in range
    # because both bounds are powers of two of each other.
    dt = np.clip(dt, params.dt_min, params.dt_max)

    if dt_current is not None:
        dt_current = np.asarray(dt_current, dtype=np.float64)
        grow = dt > dt_current
        if np.any(grow):
            doubled = dt_current[grow] * 2.0
            # commensurability: t must sit on the doubled-step grid
            steps = t_now[grow] / doubled
            ok = np.isclose(steps, np.round(steps), rtol=0.0, atol=1e-9)
            allowed = np.where(ok, doubled, dt_current[grow])
            dt[grow] = np.minimum(dt[grow], allowed)
    return dt
