"""Collision detection and perfect merging (planetary accretion).

The paper's scientific frame (Section 2) is *planetary accretion*:
"planetesimals accrete to form terrestrial and uranian planets".  The
production run itself is purely dynamical (forces are softened), but
every production planetesimal code in this family supports physical
collisions; this module provides them as the documented extension:

* :class:`CollisionPolicy` — maps masses to collision radii (material
  density + optional enhancement factor for scaled runs) and decides
  the merge product (perfect merging: mass, momentum and
  centre-of-mass conserved);
* :func:`find_collision_pairs` — vectorised detection of overlapping
  pairs between an active block and the full (predicted) system;
* integrator hook — :class:`~repro.core.integrator.Simulation` accepts
  a policy via ``collision_policy`` and resolves mergers after each
  block step, logging ``merger`` events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CollisionPolicy", "MergeOutcome", "find_collision_pairs", "merge_state"]


@dataclass(frozen=True)
class MergeOutcome:
    """Result of one perfect merger."""

    mass: float
    pos: np.ndarray
    vel: np.ndarray
    #: Key of the survivor row (the more massive progenitor keeps its key).
    survivor_key: int
    absorbed_key: int


class CollisionPolicy:
    """Collision radii and merging rule.

    Parameters
    ----------
    density:
        Material density in code units (Msun/AU^3); default icy 1 g/cm^3.
    f_enhance:
        Radius enhancement factor for scaled runs (see
        :mod:`repro.planetesimal.sizes`).
    """

    def __init__(self, density: float | None = None, f_enhance: float = 1.0) -> None:
        from ..planetesimal.sizes import ICE_DENSITY_CODE

        self.density = ICE_DENSITY_CODE if density is None else float(density)
        if self.density <= 0:
            raise ConfigurationError("density must be positive")
        if f_enhance <= 0:
            raise ConfigurationError("enhancement factor must be positive")
        self.f_enhance = float(f_enhance)

    def radii(self, mass: np.ndarray) -> np.ndarray:
        """Collision radii for an array of masses."""
        from ..planetesimal.sizes import radius_from_mass

        return radius_from_mass(mass, density=self.density, f_enhance=self.f_enhance)


def find_collision_pairs(
    pos: np.ndarray,
    radii: np.ndarray,
    active: np.ndarray,
) -> list[tuple[int, int]]:
    """Overlapping (active, any) index pairs, each pair reported once.

    Parameters
    ----------
    pos:
        Positions of the *whole* system at one common time, ``(n, 3)``.
    radii:
        Collision radii, ``(n,)``.
    active:
        Indices to test against everything (collisions only need to be
        checked for particles that just moved).

    Returns pairs ``(i, j)`` with ``i`` from ``active``, ``j`` any other
    index, ``i != j``, separation < ``radii[i] + radii[j]``; duplicates
    (both members active) are reported once with ``i < j``.

    The overlap sweep is tiled through the :mod:`repro.accel` workspace
    engine, so peak memory is one tile rather than the full
    ``(n_active, n, 3)`` separation slab; candidate order (row-major
    over the conceptual overlap matrix) and the dedup rule match the
    reference full-matrix path exactly.
    """
    pos = np.asarray(pos, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    active = np.asarray(active)
    if active.size == 0:
        return []

    from ..accel import get_engine

    rows, cols = get_engine().collision_candidates(pos, radii, active)
    return _dedup_pairs(active, rows, cols)


def _dedup_pairs(
    active: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> list[tuple[int, int]]:
    """Canonicalise row-major candidate hits to unique ``(min, max)`` pairs."""
    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for r, j in zip(rows, cols):
        i = int(active[r])
        j = int(j)
        a, b = (i, j) if i < j else (j, i)
        # if both active the pair appears twice; canonicalise
        if (a, b) in seen:
            continue
        seen.add((a, b))
        pairs.append((a, b))
    return pairs


def _find_collision_pairs_reference(
    pos: np.ndarray,
    radii: np.ndarray,
    active: np.ndarray,
) -> list[tuple[int, int]]:
    """Full-matrix detection (the pre-engine path, kept for equivalence tests)."""
    pos = np.asarray(pos, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    active = np.asarray(active)
    if active.size == 0:
        return []

    dr = pos[None, :, :] - pos[active][:, None, :]
    dist2 = np.einsum("ijk,ijk->ij", dr, dr)
    limit = radii[active][:, None] + radii[None, :]
    hits = dist2 < limit * limit
    rows = np.arange(active.size)
    hits[rows, active] = False  # self
    return _dedup_pairs(active, *np.nonzero(hits))


def merge_state(
    mass_i: float,
    pos_i: np.ndarray,
    vel_i: np.ndarray,
    key_i: int,
    mass_j: float,
    pos_j: np.ndarray,
    vel_j: np.ndarray,
    key_j: int,
) -> MergeOutcome:
    """Perfect merger: centre-of-mass state, mass and momentum conserved."""
    m = mass_i + mass_j
    if m <= 0:
        raise ConfigurationError("merging massless particles")
    pos = (mass_i * np.asarray(pos_i) + mass_j * np.asarray(pos_j)) / m
    vel = (mass_i * np.asarray(vel_i) + mass_j * np.asarray(vel_j)) / m
    if mass_i >= mass_j:
        survivor, absorbed = key_i, key_j
    else:
        survivor, absorbed = key_j, key_i
    return MergeOutcome(
        mass=float(m), pos=pos, vel=vel,
        survivor_key=int(survivor), absorbed_key=int(absorbed),
    )
