"""Direct-summation gravitational force and jerk kernels.

These are the software equivalent of the GRAPE-6 force pipeline: for each
*i*-particle, accumulate over all *j*-particles the Plummer-softened
acceleration and its first time derivative (jerk),

.. math::

    \\mathbf{a}_i = \\sum_j m_j \\frac{\\mathbf{r}_{ij}}{(r_{ij}^2+\\epsilon^2)^{3/2}},
    \\qquad
    \\dot{\\mathbf{a}}_i = \\sum_j m_j \\left[
        \\frac{\\mathbf{v}_{ij}}{(r_{ij}^2+\\epsilon^2)^{3/2}}
        - \\frac{3 (\\mathbf{r}_{ij}\\cdot\\mathbf{v}_{ij})\\,\\mathbf{r}_{ij}}
               {(r_{ij}^2+\\epsilon^2)^{5/2}} \\right],

with :math:`\\mathbf{r}_{ij} = \\mathbf{r}_j - \\mathbf{r}_i`.  The jerk is
what makes the 4th-order Hermite scheme possible with a single force
evaluation per step (Makino & Aarseth 1992); GRAPE-6 computes it in
hardware at a cost the paper books as 19 extra operations on top of the
38-op force (57 ops per interaction total).

All kernels are NumPy-vectorised with broadcasting over an
``(n_i, n_j)`` interaction tile and chunk the *i* axis to bound the
temporary-memory footprint (guides: prefer broadcasting, mind cache and
memory).  They also count interactions so the benchmark harness can apply
the paper's flop-counting convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "InteractionCounter",
    "acc_jerk",
    "acc_only",
    "potential_energy",
    "pairwise_potential",
    "min_pairwise_distance",
]

def _default_tile_budget() -> int:
    """``REPRO_TILE_BUDGET`` env override, else the 2**22 default."""
    import os

    raw = os.environ.get("REPRO_TILE_BUDGET", "").strip()
    try:
        return max(int(raw), 1024) if raw else 1 << 22
    except ValueError:
        return 1 << 22


#: Maximum number of pairwise-tile elements materialised at once
#: (n_i_chunk * n_j); 2**22 doubles * ~10 temporaries stays well under
#: typical L3 + keeps allocation overhead amortised.  Overridable via
#: the ``REPRO_TILE_BUDGET`` environment variable (the accel engine
#: reads the same variable for its — smaller, cache-sized — tiles).
_TILE_BUDGET = _default_tile_budget()


@dataclass
class InteractionCounter:
    """Accumulates pairwise-interaction counts for flop accounting.

    The paper's performance figures use the Gordon Bell convention of 38
    floating-point operations per force interaction plus 19 for the jerk
    (57 total).  The counter records raw interaction counts; conversion to
    flops lives in :mod:`repro.perf.flops`.
    """

    force_interactions: int = 0
    jerk_interactions: int = 0
    force_calls: int = 0
    #: Per-call (n_active, n_source) history, kept only when ``trace=True``.
    trace: bool = False
    history: list = field(default_factory=list)

    def add(self, n_i: int, n_j: int, with_jerk: bool) -> None:
        """Record a force evaluation of ``n_i`` sinks against ``n_j`` sources."""
        pairs = int(n_i) * int(n_j)
        self.force_interactions += pairs
        if with_jerk:
            self.jerk_interactions += pairs
        self.force_calls += 1
        if self.trace:
            self.history.append((int(n_i), int(n_j), bool(with_jerk)))

    def reset(self) -> None:
        """Zero all counters and drop the trace history."""
        self.force_interactions = 0
        self.jerk_interactions = 0
        self.force_calls = 0
        self.history.clear()


def _i_chunk_size(n_j: int) -> int:
    """Number of i-particles per tile so that the tile fits the budget."""
    return max(1, _TILE_BUDGET // max(n_j, 1))


def acc_jerk(
    pos_i: np.ndarray,
    vel_i: np.ndarray,
    pos_j: np.ndarray,
    vel_j: np.ndarray,
    mass_j: np.ndarray,
    eps: float,
    self_indices: np.ndarray | None = None,
    counter: InteractionCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Softened acceleration and jerk on sinks ``i`` from sources ``j``.

    Parameters
    ----------
    pos_i, vel_i:
        Sink positions/velocities, shape ``(n_i, 3)``.
    pos_j, vel_j, mass_j:
        Source positions, velocities and masses, shapes ``(n_j, 3)`` and
        ``(n_j,)``.
    eps:
        Plummer softening length; must be > 0 if any sink coincides with a
        source (the self-interaction is removed explicitly instead).
    self_indices:
        If the sinks are a subset of the sources, the index of each sink
        within the source arrays (shape ``(n_i,)``); the corresponding
        diagonal interaction is excluded.  ``None`` means sinks and
        sources are disjoint sets.
    counter:
        Optional :class:`InteractionCounter` to update.

    Returns
    -------
    acc, jerk:
        Arrays of shape ``(n_i, 3)``.
    """
    pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
    vel_i = np.atleast_2d(np.asarray(vel_i, dtype=np.float64))
    pos_j = np.atleast_2d(np.asarray(pos_j, dtype=np.float64))
    vel_j = np.atleast_2d(np.asarray(vel_j, dtype=np.float64))
    mass_j = np.asarray(mass_j, dtype=np.float64)

    n_i = pos_i.shape[0]
    n_j = pos_j.shape[0]
    acc = np.zeros((n_i, 3))
    jerk = np.zeros((n_i, 3))
    eps2 = float(eps) ** 2

    chunk = _i_chunk_size(n_j)
    for start in range(0, n_i, chunk):
        stop = min(start + chunk, n_i)
        # (c, n_j, 3) separation and relative-velocity tiles
        dr = pos_j[None, :, :] - pos_i[start:stop, None, :]
        dv = vel_j[None, :, :] - vel_i[start:stop, None, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr) + eps2
        rv = np.einsum("ijk,ijk->ij", dr, dv)
        if self_indices is not None:
            # Masking r2 (not the result) keeps every downstream term —
            # including the jerk's rv/r2 — finite and exactly zero.
            rows = np.arange(start, stop) - start
            cols = np.asarray(self_indices)[start:stop]
            r2[rows, cols] = np.inf
        inv_r = 1.0 / np.sqrt(r2)
        inv_r3 = inv_r / r2
        mr3 = mass_j[None, :] * inv_r3
        acc[start:stop] = np.einsum("ij,ijk->ik", mr3, dr)
        jerk[start:stop] = np.einsum("ij,ijk->ik", mr3, dv) - 3.0 * np.einsum(
            "ij,ijk->ik", mr3 * rv / r2, dr
        )

    if counter is not None:
        counter.add(n_i, n_j, with_jerk=True)
    return acc, jerk


def acc_only(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    mass_j: np.ndarray,
    eps: float,
    self_indices: np.ndarray | None = None,
    counter: InteractionCounter | None = None,
) -> np.ndarray:
    """Softened acceleration only (no jerk) — the 38-op kernel.

    Used by the leapfrog / tree baselines which do not need derivatives.
    Arguments mirror :func:`acc_jerk`.
    """
    pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
    pos_j = np.atleast_2d(np.asarray(pos_j, dtype=np.float64))
    mass_j = np.asarray(mass_j, dtype=np.float64)

    n_i = pos_i.shape[0]
    n_j = pos_j.shape[0]
    acc = np.zeros((n_i, 3))
    eps2 = float(eps) ** 2

    chunk = _i_chunk_size(n_j)
    for start in range(0, n_i, chunk):
        stop = min(start + chunk, n_i)
        dr = pos_j[None, :, :] - pos_i[start:stop, None, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr) + eps2
        if self_indices is not None:
            rows = np.arange(start, stop) - start
            cols = np.asarray(self_indices)[start:stop]
            r2[rows, cols] = np.inf
        inv_r3 = 1.0 / (r2 * np.sqrt(r2))
        acc[start:stop] = np.einsum("ij,ijk->ik", mass_j[None, :] * inv_r3, dr)

    if counter is not None:
        counter.add(n_i, n_j, with_jerk=False)
    return acc


def pairwise_potential(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    mass_j: np.ndarray,
    eps: float,
    self_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Softened potential ``phi_i = -sum_j m_j / sqrt(r_ij^2 + eps^2)``.

    Returns shape ``(n_i,)``; the sink's own mass does *not* appear
    (potential per unit mass).
    """
    pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
    pos_j = np.atleast_2d(np.asarray(pos_j, dtype=np.float64))
    mass_j = np.asarray(mass_j, dtype=np.float64)

    n_i = pos_i.shape[0]
    n_j = pos_j.shape[0]
    phi = np.zeros(n_i)
    eps2 = float(eps) ** 2

    chunk = _i_chunk_size(n_j)
    for start in range(0, n_i, chunk):
        stop = min(start + chunk, n_i)
        dr = pos_j[None, :, :] - pos_i[start:stop, None, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr) + eps2
        if self_indices is not None:
            rows = np.arange(start, stop) - start
            cols = np.asarray(self_indices)[start:stop]
            r2[rows, cols] = np.inf
        inv_r = 1.0 / np.sqrt(r2)
        phi[start:stop] = -inv_r @ mass_j

    return phi


def potential_energy(pos: np.ndarray, mass: np.ndarray, eps: float) -> float:
    """Total mutual (softened) potential energy of one particle set.

    ``W = -1/2 * sum_i sum_{j != i} m_i m_j / sqrt(r_ij^2 + eps^2)``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = pos.shape[0]
    from ..accel import get_engine

    phi = get_engine().pairwise_potential(pos, pos, mass, eps, self_indices=np.arange(n))
    return 0.5 * float(np.dot(mass, phi))


def min_pairwise_distance(pos: np.ndarray) -> float:
    """Smallest unsoftened pairwise separation in a particle set.

    Useful in tests/diagnostics to confirm the softening scale is being
    exercised.  O(N^2), chunked.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = pos.shape[0]
    if n < 2:
        return np.inf
    best = np.inf
    chunk = _i_chunk_size(n)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        dr = pos[None, :, :] - pos[start:stop, None, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr)
        rows = np.arange(start, stop) - start
        r2[rows, np.arange(start, stop)] = np.inf
        best = min(best, float(np.sqrt(r2.min())))
    return best
