"""Snapshot persistence (compressed ``.npz``).

A snapshot stores the complete dynamical state of a
:class:`~repro.core.particles.ParticleSystem` plus a metadata dictionary
(run parameters, simulation time).  Snapshots round-trip exactly
(bit-identical float64 arrays), which the test suite verifies — restart
capability was essential for the paper's multi-hour production run.

Writes are **atomic**: the archive is assembled in a same-directory
temporary file and moved into place with :func:`os.replace`, so a crash
(or an injected host-kill) mid-write can never leave a torn ``.npz``
under the final name — the restart path either sees the previous intact
snapshot or the new one, never garbage.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path

import numpy as np

from ..errors import SnapshotError
from .particles import ParticleSystem

__all__ = ["save_snapshot", "load_snapshot"]

_FORMAT_VERSION = 1

_ARRAYS = ("mass", "pos", "vel", "acc", "jerk", "t", "dt", "key")

#: Arrays written by current code but absent from older snapshots;
#: loaded when present, defaulted otherwise (keeps format_version 1).
_OPTIONAL_ARRAYS = ("h_nb",)


def save_snapshot(path, system: ParticleSystem, metadata: dict | None = None) -> Path:
    """Write ``system`` (and optional JSON-serialisable metadata) to ``path``.

    Returns the path actually written (a ``.npz`` suffix is enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = dict(metadata or {})
    meta["format_version"] = _FORMAT_VERSION
    try:
        meta_json = json.dumps(meta)
    except TypeError as exc:
        raise SnapshotError(f"metadata is not JSON-serialisable: {exc}") from exc
    arrays = {name: getattr(system, name) for name in _ARRAYS + _OPTIONAL_ARRAYS}
    # Atomic publish: write to a sibling temp file, fsync, then rename.
    # (A file handle is passed so numpy cannot append a second suffix.)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, _metadata=np.array(meta_json), **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(path.parent)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def fsync_directory(directory) -> None:
    """Fsync a directory so a rename inside it survives a host crash.

    ``os.replace`` makes the file contents atomic, but the *directory
    entry* only becomes durable once the directory itself is synced;
    without this a machine crash can forget the rename and resurrect
    the old name.  Best-effort: filesystems that refuse directory fds
    are skipped.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystem
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystem
        pass
    finally:
        os.close(fd)


def load_snapshot(path) -> tuple[ParticleSystem, dict]:
    """Read a snapshot; returns ``(system, metadata)``.

    Raises
    ------
    SnapshotError
        If the file is missing arrays or has an unknown format version.
    """
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"snapshot not found: {path}")
    try:
        return _load(path)
    except SnapshotError:
        raise
    except (ValueError, OSError, EOFError, KeyError, zipfile.BadZipFile) as exc:
        # numpy surfaces truncation/corruption as BadZipFile, ValueError
        # ("pickled data"), EOFError or CRC OSErrors depending on where
        # the damage sits; callers get one stable contract
        raise SnapshotError(f"corrupt or truncated snapshot {path}: {exc}") from exc


def _load(path: Path) -> tuple[ParticleSystem, dict]:
    with np.load(path, allow_pickle=False) as data:
        missing = [name for name in _ARRAYS if name not in data]
        if missing:
            raise SnapshotError(f"snapshot {path} is missing arrays: {missing}")
        meta = json.loads(str(data["_metadata"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot format version {meta.get('format_version')}"
            )
        system = ParticleSystem(
            data["mass"], data["pos"], data["vel"], keys=data["key"]
        )
        system.acc = np.ascontiguousarray(data["acc"])
        system.jerk = np.ascontiguousarray(data["jerk"])
        system.t = np.ascontiguousarray(data["t"])
        system.dt = np.ascontiguousarray(data["dt"])
        if "h_nb" in data:
            system.h_nb = np.ascontiguousarray(data["h_nb"])
        system.pred_pos = system.pos.copy()
        system.pred_vel = system.vel.copy()
    meta.pop("format_version", None)
    return system, meta
