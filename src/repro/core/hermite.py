"""The 4th-order Hermite predictor–corrector scheme.

This is the integrator used by the paper (via the block individual
timestep algorithm): each particle step needs exactly *one* evaluation of
the force **and its time derivative** — precisely what the GRAPE-6
pipeline returns per interaction.  The scheme (Makino 1991; Makino &
Aarseth 1992) reconstructs the 2nd and 3rd force derivatives from the
(force, jerk) pairs at the old and new times:

.. math::

    \\mathbf{a}^{(2)}_0 &= \\frac{-6(\\mathbf{a}_0-\\mathbf{a}_1)
        - \\Delta t (4\\dot{\\mathbf{a}}_0 + 2\\dot{\\mathbf{a}}_1)}{\\Delta t^2} \\\\
    \\mathbf{a}^{(3)}_0 &= \\frac{12(\\mathbf{a}_0-\\mathbf{a}_1)
        + 6\\Delta t (\\dot{\\mathbf{a}}_0 + \\dot{\\mathbf{a}}_1)}{\\Delta t^3}

and corrects the predicted position/velocity to 4th/5th order:

.. math::

    \\mathbf{x}_1 &= \\mathbf{x}_p + \\frac{\\Delta t^4}{24}\\mathbf{a}^{(2)}_0
        + \\frac{\\Delta t^5}{120}\\mathbf{a}^{(3)}_0 \\\\
    \\mathbf{v}_1 &= \\mathbf{v}_p + \\frac{\\Delta t^3}{6}\\mathbf{a}^{(2)}_0
        + \\frac{\\Delta t^4}{24}\\mathbf{a}^{(3)}_0 .

All functions operate on arrays of active particles (shape ``(n, 3)``,
``dt`` shape ``(n,)``) so a whole block is corrected in one vectorised
call.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = ["HermiteDerivatives", "reconstruct_derivatives", "correct", "hermite_step_arrays"]


class HermiteDerivatives(NamedTuple):
    """Higher force derivatives produced by the Hermite corrector.

    ``snap`` and ``crackle`` are evaluated *at the end of the step* (the
    particle's new time), which is what the Aarseth timestep criterion
    needs.
    """

    snap: np.ndarray  #: 2nd derivative of acceleration at t1, shape (n, 3)
    crackle: np.ndarray  #: 3rd derivative of acceleration (constant over the step)


def reconstruct_derivatives(
    acc0: np.ndarray,
    jerk0: np.ndarray,
    acc1: np.ndarray,
    jerk1: np.ndarray,
    dt: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """2nd/3rd force derivatives at the *old* time from endpoint values.

    Returns ``(a2_0, a3_0)``, both shape ``(n, 3)``.
    """
    dt = np.asarray(dt, dtype=np.float64)[:, None]
    da = acc0 - acc1
    a2 = (-6.0 * da - dt * (4.0 * jerk0 + 2.0 * jerk1)) / dt**2
    a3 = (12.0 * da + 6.0 * dt * (jerk0 + jerk1)) / dt**3
    return a2, a3


def correct(
    pred_pos: np.ndarray,
    pred_vel: np.ndarray,
    acc0: np.ndarray,
    jerk0: np.ndarray,
    acc1: np.ndarray,
    jerk1: np.ndarray,
    dt: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, HermiteDerivatives]:
    """Apply the Hermite corrector to a block of predicted particles.

    Parameters
    ----------
    pred_pos, pred_vel:
        Predicted state at the new time (from :mod:`repro.core.predictor`).
    acc0, jerk0:
        Force and jerk at the start of the step.
    acc1, jerk1:
        Force and jerk evaluated at the *predicted* state at the new time.
    dt:
        Per-particle step sizes, shape ``(n,)``.

    Returns
    -------
    pos1, vel1, derivs:
        Corrected state and the end-of-step higher derivatives for the
        timestep criterion.
    """
    dtc = np.asarray(dt, dtype=np.float64)[:, None]
    a2_0, a3_0 = reconstruct_derivatives(acc0, jerk0, acc1, jerk1, dt)
    pos1 = pred_pos + (dtc**4 / 24.0) * a2_0 + (dtc**5 / 120.0) * a3_0
    vel1 = pred_vel + (dtc**3 / 6.0) * a2_0 + (dtc**4 / 24.0) * a3_0
    snap1 = a2_0 + dtc * a3_0
    return pos1, vel1, HermiteDerivatives(snap=snap1, crackle=a3_0)


def hermite_step_arrays(
    pos: np.ndarray,
    vel: np.ndarray,
    acc: np.ndarray,
    jerk: np.ndarray,
    dt: np.ndarray,
    force_at,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, HermiteDerivatives]:
    """One self-contained Hermite step for a standalone particle block.

    ``force_at(pos, vel) -> (acc, jerk)`` evaluates the force at arbitrary
    phase-space points.  This helper exists for the shared-timestep
    baseline and for unit tests of the scheme's convergence order; the
    production block-step driver lives in :mod:`repro.core.integrator`.

    Returns ``(pos1, vel1, acc1, jerk1, derivs)``.
    """
    from .predictor import predict_positions, predict_velocities

    pred_pos = predict_positions(pos, vel, acc, jerk, dt)
    pred_vel = predict_velocities(vel, acc, jerk, dt)
    acc1, jerk1 = force_at(pred_pos, pred_vel)
    pos1, vel1, derivs = correct(pred_pos, pred_vel, acc, jerk, acc1, jerk1, dt)
    return pos1, vel1, acc1, jerk1, derivs
