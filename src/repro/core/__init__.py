"""Core N-body engine: the paper's primary algorithmic contribution.

Public surface:

* :class:`~repro.core.particles.ParticleSystem` — structure-of-arrays state
* :class:`~repro.core.integrator.Simulation` — block-timestep Hermite driver
* :class:`~repro.core.backends.HostDirectBackend` — reference force engine
* :class:`~repro.core.timestep.TimestepParams` — accuracy knobs
* :class:`~repro.core.external.KeplerField` — the Sun as external potential
* :func:`~repro.core.diagnostics.energy` and friends — conserved quantities
"""

from .backends import ForceBackend, HostDirectBackend
from .collisions import CollisionPolicy, find_collision_pairs, merge_state
from .diagnostics import EnergyBreakdown, EnergyTracker, angular_momentum, energy
from .encounters import TimescaleCensus, encounter_timescale, measure_timescales
from .external import CompositeField, ExternalField, KeplerField, NullField
from .forces import InteractionCounter, acc_jerk, acc_only, potential_energy
from .kernels import acc_spline, spline_force_factor
from .integrator import Simulation
from .particles import ParticleSystem
from .scheduler import BlockScheduler, BlockStats
from .snapshots import load_snapshot, save_snapshot
from .timestep import TimestepParams

__all__ = [
    "ForceBackend",
    "HostDirectBackend",
    "CollisionPolicy",
    "find_collision_pairs",
    "merge_state",
    "EnergyBreakdown",
    "EnergyTracker",
    "angular_momentum",
    "energy",
    "TimescaleCensus",
    "encounter_timescale",
    "measure_timescales",
    "CompositeField",
    "ExternalField",
    "KeplerField",
    "NullField",
    "InteractionCounter",
    "acc_jerk",
    "acc_only",
    "potential_energy",
    "acc_spline",
    "spline_force_factor",
    "Simulation",
    "ParticleSystem",
    "BlockScheduler",
    "BlockStats",
    "load_snapshot",
    "save_snapshot",
    "TimestepParams",
]
