"""Event detection and logging during integration.

The science question of the paper's Section 2 is *scattering*: how many
planetesimals proto-Neptune ejects toward the Oort cloud versus accretes.
The integrator therefore emits events:

* ``escape`` — a particle's two-body energy w.r.t. the Sun became
  positive (hyperbolic orbit) while it is beyond a distance threshold;
  this is the Oort-cloud-candidate proxy used by the scattering example.
* ``close_encounter`` — two particles approached within a multiple of
  the softening length (informational; the Hermite scheme handles these,
  but the event rate is a useful diagnostic of the timestep range).

Event detection is optional and runs at diagnostic cadence, not every
block step, so it never sits on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Event", "EventLog", "detect_escapers"]


@dataclass(frozen=True)
class Event:
    """A single logged event."""

    kind: str
    time: float
    key: int
    #: Free-form payload (e.g. the escape speed or encounter partner).
    data: dict = field(default_factory=dict)


class EventLog:
    """Append-only list of :class:`Event` with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def append(self, event: Event) -> None:
        self._events.append(event)

    def extend(self, events) -> None:
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """All events of one kind, in time order of logging."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)


def detect_escapers(
    system,
    m_central: float = 1.0,
    r_min: float = 50.0,
) -> np.ndarray:
    """Indices of particles on escape orbits from the central mass.

    A particle escapes when its heliocentric two-body energy
    ``v^2/2 - M/r`` is positive *and* it is already outside ``r_min``
    (so a planetesimal momentarily fast inside the disk does not count —
    it may still be deflected back).

    Mutual planetesimal gravity is negligible at these distances, so the
    two-body energy is the right criterion.
    """
    r = np.linalg.norm(system.pos, axis=1)
    v2 = np.einsum("ij,ij->i", system.vel, system.vel)
    e_two_body = 0.5 * v2 - m_central / r
    return np.nonzero((e_two_body > 0.0) & (r > r_min))[0]
