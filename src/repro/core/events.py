"""Event detection and logging during integration.

The science question of the paper's Section 2 is *scattering*: how many
planetesimals proto-Neptune ejects toward the Oort cloud versus accretes.
The integrator therefore emits events:

* ``escape`` — a particle's two-body energy w.r.t. the Sun became
  positive (hyperbolic orbit) while it is beyond a distance threshold;
  this is the Oort-cloud-candidate proxy used by the scattering example.
* ``close_encounter`` — two particles approached within a multiple of
  the softening length (informational; the Hermite scheme handles these,
  but the event rate is a useful diagnostic of the timestep range).

Event detection is optional and runs at diagnostic cadence, not every
block step, so it never sits on the hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Event", "EventLog", "detect_escapers"]


@dataclass(frozen=True)
class Event:
    """A single logged event."""

    kind: str
    time: float
    key: int
    #: Free-form payload (e.g. the escape speed or encounter partner).
    data: dict = field(default_factory=dict)


class EventLog:
    """Append-only list of :class:`Event` with simple query helpers.

    When constructed with a :class:`repro.obs.MetricsRegistry`, every
    append increments the matching ``events.<kind>_total`` counter, so
    event rates are visible in the same metrics stream as the timing
    data (disabled by default through the null registry).
    """

    def __init__(self, metrics=None) -> None:
        from ..obs import NULL_REGISTRY

        self._events: list[Event] = []
        # explicit None test: an empty registry is falsy (len() == 0)
        self._metrics = NULL_REGISTRY if metrics is None else metrics

    def append(self, event: Event) -> None:
        self._events.append(event)
        self._metrics.counter(f"events.{event.kind}_total").inc()

    def extend(self, events) -> None:
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """All events of one kind, in time order of logging."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    # -- persistence -------------------------------------------------------

    def to_jsonl(self, path, run_id: str = "") -> Path:
        """Write all events as JSONL (run-log conventions: header first).

        The file round-trips through :meth:`from_jsonl` and is readable
        by :func:`repro.runio.runlog.read_run_log`, so event logs sit
        alongside run logs and span exports with one toolchain.
        """
        path = Path(path)
        with open(path, "w") as fh:
            header = {
                "kind": "header",
                "run_id": run_id,
                "format": "repro-events-v1",
                "n_events": len(self._events),
            }
            fh.write(json.dumps(header) + "\n")
            for e in self._events:
                rec = {
                    "kind": "event",
                    "event": e.kind,
                    "time": e.time,
                    "key": e.key,
                }
                if e.data:
                    rec["data"] = e.data
                fh.write(json.dumps(rec) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path, metrics=None) -> "EventLog":
        """Rebuild an :class:`EventLog` written by :meth:`to_jsonl`.

        Uses the run-log reader, so a torn tail record (crash mid-write)
        is tolerated.  Counters on ``metrics`` are incremented for every
        restored event, as on live appends.
        """
        from ..runio.runlog import read_run_log

        log = cls(metrics=metrics)
        for rec in read_run_log(path):
            if rec.get("kind") != "event":
                continue
            key = rec["key"]
            # merger keys are (i, j) pairs; JSON stores them as lists
            if isinstance(key, list):
                key = tuple(key)
            log.append(
                Event(
                    rec["event"],
                    float(rec["time"]),
                    key,
                    rec.get("data") or {},
                )
            )
        return log


def detect_escapers(
    system,
    m_central: float = 1.0,
    r_min: float = 50.0,
) -> np.ndarray:
    """Indices of particles on escape orbits from the central mass.

    A particle escapes when its heliocentric two-body energy
    ``v^2/2 - M/r`` is positive *and* it is already outside ``r_min``
    (so a planetesimal momentarily fast inside the disk does not count —
    it may still be deflected back).

    Mutual planetesimal gravity is negligible at these distances, so the
    two-body energy is the right criterion.
    """
    r = np.linalg.norm(system.pos, axis=1)
    v2 = np.einsum("ij,ij->i", system.vel, system.vel)
    e_two_body = 0.5 * v2 - m_central / r
    return np.nonzero((e_two_body > 0.0) & (r > r_min))[0]
