"""Structure-of-arrays particle container.

The entire library stores particle state as contiguous NumPy arrays
(one array per component group), following the HPC idiom of
structure-of-arrays rather than an array of particle objects: every hot
loop (force evaluation, prediction, correction) is then a vectorised
operation over contiguous memory.

A :class:`ParticleSystem` carries, for each of ``n`` particles:

``mass``      shape ``(n,)``
``pos``       shape ``(n, 3)`` positions at each particle's own time
``vel``       shape ``(n, 3)`` velocities at each particle's own time
``acc``       shape ``(n, 3)`` accelerations at each particle's own time
``jerk``      shape ``(n, 3)`` acceleration time-derivatives
``t``         shape ``(n,)`` the particle's individual time
``dt``        shape ``(n,)`` the particle's individual (block) timestep
``pred_pos``  shape ``(n, 3)`` predicted positions at the current system time
``pred_vel``  shape ``(n, 3)`` predicted velocities at the current system time
``key``       shape ``(n,)`` stable integer identifiers
``h_nb``      shape ``(n,)`` neighbour-sphere radii (0 = backend default)

Under the individual-timestep algorithm different particles live at
different times; ``pred_pos``/``pred_vel`` are the shared-time view of the
system produced by the predictor (on the host, or on GRAPE-6 by the
on-chip predictor pipeline).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ParticleError

__all__ = ["ParticleSystem"]


class ParticleSystem:
    """Mutable structure-of-arrays store for an N-body system.

    Parameters
    ----------
    mass, pos, vel:
        Required initial data; shapes ``(n,)``, ``(n, 3)``, ``(n, 3)``.
    keys:
        Optional stable integer identifiers; defaults to ``arange(n)``.
    time:
        Initial common time of all particles (scalar).

    Notes
    -----
    Arrays are always C-contiguous ``float64``.  ``acc`` and ``jerk`` start
    at zero and are filled in by the integrator's startup force evaluation.
    """

    __slots__ = (
        "mass",
        "pos",
        "vel",
        "acc",
        "jerk",
        "t",
        "dt",
        "pred_pos",
        "pred_vel",
        "key",
        "h_nb",
    )

    def __init__(
        self,
        mass: np.ndarray,
        pos: np.ndarray,
        vel: np.ndarray,
        keys: np.ndarray | None = None,
        time: float = 0.0,
    ) -> None:
        # Explicit copies: the integrator mutates these arrays in place,
        # and aliasing the caller's data would be a nasty footgun.
        mass = np.array(mass, dtype=np.float64, order="C", copy=True)
        pos = np.array(pos, dtype=np.float64, order="C", copy=True)
        vel = np.array(vel, dtype=np.float64, order="C", copy=True)

        if mass.ndim != 1:
            raise ParticleError(f"mass must be 1-D, got shape {mass.shape}")
        n = mass.shape[0]
        if pos.shape != (n, 3):
            raise ParticleError(f"pos must have shape ({n}, 3), got {pos.shape}")
        if vel.shape != (n, 3):
            raise ParticleError(f"vel must have shape ({n}, 3), got {vel.shape}")
        if n == 0:
            raise ParticleError("a ParticleSystem needs at least one particle")
        if not np.all(np.isfinite(mass)):
            raise ParticleError("non-finite masses supplied")
        if np.any(mass < 0):
            raise ParticleError("negative masses supplied")
        if not (np.all(np.isfinite(pos)) and np.all(np.isfinite(vel))):
            raise ParticleError("non-finite positions or velocities supplied")

        if keys is None:
            keys = np.arange(n, dtype=np.int64)
        else:
            keys = np.ascontiguousarray(keys, dtype=np.int64)
            if keys.shape != (n,):
                raise ParticleError(f"keys must have shape ({n},), got {keys.shape}")
            if len(np.unique(keys)) != n:
                raise ParticleError("particle keys must be unique")

        self.mass = mass
        self.pos = pos
        self.vel = vel
        self.acc = np.zeros((n, 3))
        self.jerk = np.zeros((n, 3))
        self.t = np.full(n, float(time))
        self.dt = np.zeros(n)
        self.pred_pos = pos.copy()
        self.pred_vel = vel.copy()
        self.key = keys
        # Neighbour-sphere radii for neighbour-scheme backends; 0 means
        # "use the backend's global default" so plain direct/tree runs
        # never have to think about it.
        self.h_nb = np.zeros(n)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self.mass.shape[0]

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.mass.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParticleSystem(n={self.n}, total_mass={self.total_mass():.6g}, "
            f"t_range=[{self.t.min():.6g}, {self.t.max():.6g}])"
        )

    # -- derived quantities --------------------------------------------------

    def total_mass(self) -> float:
        """Sum of particle masses."""
        return float(self.mass.sum())

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted mean position, shape ``(3,)``."""
        m = self.total_mass()
        if m == 0.0:
            return self.pos.mean(axis=0)
        return (self.mass[:, None] * self.pos).sum(axis=0) / m

    def center_of_mass_velocity(self) -> np.ndarray:
        """Mass-weighted mean velocity, shape ``(3,)``."""
        m = self.total_mass()
        if m == 0.0:
            return self.vel.mean(axis=0)
        return (self.mass[:, None] * self.vel).sum(axis=0) / m

    def radii(self) -> np.ndarray:
        """Distance of each particle from the coordinate origin (the Sun)."""
        return np.linalg.norm(self.pos, axis=1)

    def speeds(self) -> np.ndarray:
        """Magnitude of each particle's velocity."""
        return np.linalg.norm(self.vel, axis=1)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def concatenate(cls, systems: Iterable["ParticleSystem"]) -> "ParticleSystem":
        """Merge several particle systems into one.

        Keys are re-assigned sequentially to keep them unique.  All systems
        must be at a single common time.
        """
        systems = list(systems)
        if not systems:
            raise ParticleError("cannot concatenate zero systems")
        times = np.concatenate([s.t for s in systems])
        if not np.allclose(times, times[0]):
            raise ParticleError("systems must share a common time to concatenate")
        mass = np.concatenate([s.mass for s in systems])
        pos = np.concatenate([s.pos for s in systems])
        vel = np.concatenate([s.vel for s in systems])
        out = cls(mass, pos, vel, time=float(times[0]))
        offset = 0
        for s in systems:
            out.acc[offset : offset + s.n] = s.acc
            out.jerk[offset : offset + s.n] = s.jerk
            out.dt[offset : offset + s.n] = s.dt
            out.h_nb[offset : offset + s.n] = s.h_nb
            offset += s.n
        return out

    def copy(self) -> "ParticleSystem":
        """Deep copy of the full state."""
        out = ParticleSystem(
            self.mass.copy(), self.pos.copy(), self.vel.copy(), keys=self.key.copy()
        )
        out.acc = self.acc.copy()
        out.jerk = self.jerk.copy()
        out.t = self.t.copy()
        out.dt = self.dt.copy()
        out.pred_pos = self.pred_pos.copy()
        out.pred_vel = self.pred_vel.copy()
        out.h_nb = self.h_nb.copy()
        return out

    def select(self, index: np.ndarray) -> "ParticleSystem":
        """Return a new system containing the particles at ``index``.

        ``index`` may be an integer index array or a boolean mask.  Keys
        are preserved (not re-assigned) so selections can be correlated
        with the parent system.
        """
        index = np.asarray(index)
        if index.dtype == bool:
            if index.shape != (self.n,):
                raise ParticleError("boolean mask has wrong length")
            index = np.nonzero(index)[0]
        if index.size == 0:
            raise ParticleError("selection is empty")
        out = ParticleSystem(
            self.mass[index], self.pos[index], self.vel[index], keys=self.key[index]
        )
        out.acc = self.acc[index].copy()
        out.jerk = self.jerk[index].copy()
        out.t = self.t[index].copy()
        out.dt = self.dt[index].copy()
        out.pred_pos = self.pred_pos[index].copy()
        out.pred_vel = self.pred_vel[index].copy()
        out.h_nb = self.h_nb[index].copy()
        return out

    def remove(self, index: np.ndarray) -> "ParticleSystem":
        """Return a new system with the particles at ``index`` removed."""
        mask = np.ones(self.n, dtype=bool)
        mask[np.asarray(index)] = False
        return self.select(mask)

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ParticleError` if any state array is inconsistent.

        Intended for use in tests and at subsystem boundaries, not in hot
        loops.
        """
        n = self.n
        expect = {
            "mass": (n,),
            "pos": (n, 3),
            "vel": (n, 3),
            "acc": (n, 3),
            "jerk": (n, 3),
            "t": (n,),
            "dt": (n,),
            "pred_pos": (n, 3),
            "pred_vel": (n, 3),
            "key": (n,),
            "h_nb": (n,),
        }
        for name, shape in expect.items():
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ParticleError(f"{name} has shape {arr.shape}, expected {shape}")
            if arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
                raise ParticleError(f"{name} contains non-finite values")
        if np.any(self.dt < 0):
            raise ParticleError("negative timestep")
        if np.any(self.h_nb < 0):
            raise ParticleError("negative neighbour radius")
