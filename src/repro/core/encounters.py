"""Close-encounter statistics: the timescale-range argument, measured.

Paper Section 3: "the orbital period of protoplanets and planetesimals
is of the order of 100 years.  However, when two planetesimals or a
planetesimal and a protoplanet undergo close encounters, the timescale
can go down to a few hours.  Thus, the timescale ranges six orders of
magnitudes."

This module measures exactly that on a running simulation:

* per-particle dynamical timescale (from the Aarseth criterion's inputs
  — the live ``dt`` distribution is its quantised shadow);
* closest-approach tracking via the (GRAPE-style) nearest-neighbour
  query, with the corresponding two-body encounter timescale
  ``t_enc = sqrt(d^3 / (m_i + m_j))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["TimescaleCensus", "measure_timescales", "encounter_timescale"]


def encounter_timescale(distance, m_total):
    """Two-body free-fall timescale ``sqrt(d^3 / (G m))`` (G = 1)."""
    distance = np.asarray(distance, dtype=np.float64)
    m_total = np.asarray(m_total, dtype=np.float64)
    if np.any(m_total <= 0):
        raise ConfigurationError("total mass must be positive")
    return np.sqrt(distance**3 / m_total)


@dataclass(frozen=True)
class TimescaleCensus:
    """Timescale-range measurements at one instant."""

    time: float
    #: smallest and largest quantised particle steps in the system
    dt_min: float
    dt_max: float
    #: orbital period at the disk's inner edge (the long timescale)
    orbital_period: float
    #: shortest two-body encounter timescale found
    t_encounter_min: float
    #: smallest nearest-neighbour separation
    closest_approach: float

    @property
    def dt_dynamic_range(self) -> float:
        """Ratio of largest to smallest live timestep."""
        return self.dt_max / self.dt_min

    @property
    def physical_dynamic_range(self) -> float:
        """Orbit period over the shortest encounter timescale — the
        paper's 'six orders of magnitude' number (at production scale)."""
        return self.orbital_period / self.t_encounter_min


def measure_timescales(system, r_inner: float = 15.0) -> TimescaleCensus:
    """Census the timescale range of a particle system.

    Uses an O(N^2) nearest-neighbour sweep (fine at analysis cadence);
    backends with hardware neighbour search can supply the same data
    cheaper via :meth:`repro.grape.system.Grape6Machine.neighbours_of`.
    """
    from ..units import orbital_period
    from .forces import _i_chunk_size

    pos = system.pos
    mass = system.mass
    n = system.n
    if n < 2:
        raise ConfigurationError("need at least two particles")

    best_d = np.inf
    best_m = 0.0
    chunk = _i_chunk_size(n)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        dr = pos[None, :, :] - pos[start:stop, None, :]
        d2 = np.einsum("ijk,ijk->ij", dr, dr)
        rows = np.arange(start, stop) - start
        d2[rows, np.arange(start, stop)] = np.inf
        arg = np.argmin(d2, axis=1)
        dmin = np.sqrt(d2[rows, arg])
        k = int(np.argmin(dmin))
        if dmin[k] < best_d:
            best_d = float(dmin[k])
            best_m = float(mass[start + k] + mass[arg[k]])

    return TimescaleCensus(
        time=float(system.t.max()),
        dt_min=float(system.dt.min()) if np.all(system.dt > 0) else float("nan"),
        dt_max=float(system.dt.max()),
        orbital_period=float(orbital_period(r_inner)),
        t_encounter_min=float(encounter_timescale(best_d, best_m)),
        closest_approach=best_d,
    )
