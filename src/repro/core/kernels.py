"""Alternative softening kernels: the compact cubic spline.

The paper uses Plummer softening (``1/(r^2+eps^2)^{3/2}``, never exactly
Newtonian).  The other standard choice — used by tree/SPH codes of the
same era (Hernquist & Katz 1989; GADGET) — is the **cubic-spline**
kernel: exactly Newtonian beyond the softening length ``h`` and
polynomial inside.  Having both lets the ablation tests show what the
paper's softening choice does and does not affect.

The force factor (acceleration = ``m * g(r) * dr`` with ``u = r/h``):

.. math::

    g(r) = \\frac{1}{h^3}\\times\\begin{cases}
      \\frac{32}{3} + u^2(32 u - \\frac{192}{5}) & u < \\tfrac12 \\\\
      \\frac{64}{3} - 48 u + \\frac{192}{5} u^2 - \\frac{32}{3} u^3
          - \\frac{1}{15 u^3} & \\tfrac12 \\le u < 1 \\\\
      1/u^3 & u \\ge 1,
    \\end{cases}

continuous at both break points and equal to ``1/r^3`` outside ``h``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["spline_force_factor", "acc_spline"]


def spline_force_factor(u: np.ndarray) -> np.ndarray:
    """Dimensionless g(u) such that ``acc = m * g(u)/h^3 * dr``.

    ``u = r/h``; returns ``1/u^3`` for ``u >= 1`` (Newtonian branch).
    ``u = 0`` returns the finite central value 32/3.
    """
    u = np.asarray(u, dtype=np.float64)
    if np.any(u < 0):
        raise ConfigurationError("u must be non-negative")
    out = np.empty_like(u)

    inner = u < 0.5
    mid = (u >= 0.5) & (u < 1.0)
    outer = u >= 1.0

    ui = u[inner]
    out[inner] = 32.0 / 3.0 + ui * ui * (32.0 * ui - 192.0 / 5.0)

    um = u[mid]
    out[mid] = (
        64.0 / 3.0
        - 48.0 * um
        + (192.0 / 5.0) * um * um
        - (32.0 / 3.0) * um**3
        - 1.0 / (15.0 * um**3)
    )

    uo = u[outer]
    with np.errstate(divide="ignore"):
        out[outer] = 1.0 / (uo**3)
    return out


def acc_spline(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    mass_j: np.ndarray,
    h: float,
    self_indices: np.ndarray | None = None,
    counter=None,
) -> np.ndarray:
    """Spline-softened acceleration on sinks ``i`` from sources ``j``.

    Exactly Newtonian for separations beyond ``h``; finite (linear in
    ``r``) at the centre.  Arguments mirror
    :func:`repro.core.forces.acc_only`, including the ``counter`` for
    flop accounting (38-op convention, no jerk), and evaluation is
    dispatched through the :mod:`repro.accel` workspace engine.
    """
    if h <= 0:
        raise ConfigurationError("spline softening length must be positive")
    from ..accel import get_engine

    return get_engine().acc_spline(
        pos_i, pos_j, mass_j, h, self_indices=self_indices, counter=counter
    )


def _acc_spline_reference(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    mass_j: np.ndarray,
    h: float,
    self_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Chunked broadcasting implementation (the ``spline/reference`` kernel)."""
    if h <= 0:
        raise ConfigurationError("spline softening length must be positive")
    pos_i = np.atleast_2d(np.asarray(pos_i, dtype=np.float64))
    pos_j = np.atleast_2d(np.asarray(pos_j, dtype=np.float64))
    mass_j = np.asarray(mass_j, dtype=np.float64)

    n_i = pos_i.shape[0]
    acc = np.zeros((n_i, 3))
    inv_h3 = 1.0 / h**3

    from .forces import _i_chunk_size

    chunk = _i_chunk_size(pos_j.shape[0])
    for start in range(0, n_i, chunk):
        stop = min(start + chunk, n_i)
        dr = pos_j[None, :, :] - pos_i[start:stop, None, :]
        r = np.sqrt(np.einsum("ijk,ijk->ij", dr, dr))
        g = spline_force_factor(r / h) * inv_h3
        if self_indices is not None:
            rows = np.arange(start, stop) - start
            cols = np.asarray(self_indices)[start:stop]
            g[rows, cols] = 0.0
        acc[start:stop] = np.einsum("ij,ijk->ik", mass_j[None, :] * g, dr)
    return acc
