"""Conserved-quantity diagnostics: energy, angular momentum, barycentre.

With the Sun treated as an external Kepler field the conserved energy is

.. math::

    E = \\underbrace{\\tfrac12 \\sum_i m_i v_i^2}_{\\text{kinetic}}
      + \\underbrace{\\tfrac12 \\sum_{i \\ne j}
            \\frac{-m_i m_j}{\\sqrt{r_{ij}^2+\\epsilon^2}}}_{\\text{mutual}}
      + \\underbrace{\\sum_i m_i\\,\\Phi_\\odot(\\mathbf{r}_i)}_{\\text{external}} ,

and the z-component of total angular momentum about the Sun is conserved
as well (the external field is central).  These are the quantities the
accuracy benchmarks track.

All functions require the system to be *synchronised* (all particles at
one common time); :meth:`repro.core.integrator.Simulation.synchronize`
produces such a state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .forces import potential_energy

__all__ = ["EnergyBreakdown", "energy", "angular_momentum", "EnergyTracker"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Total energy and its components (code units)."""

    kinetic: float
    mutual: float
    external: float

    @property
    def total(self) -> float:
        return self.kinetic + self.mutual + self.external


def energy(system, eps: float, external_field=None) -> EnergyBreakdown:
    """Energy breakdown of a synchronised particle system.

    Parameters
    ----------
    system:
        :class:`repro.core.particles.ParticleSystem` at a common time.
    eps:
        Softening used for the mutual term (must match the force law).
    external_field:
        Optional :class:`repro.core.external.ExternalField`.
    """
    v2 = np.einsum("ij,ij->i", system.vel, system.vel)
    kinetic = 0.5 * float(np.dot(system.mass, v2))
    mutual = potential_energy(system.pos, system.mass, eps)
    ext = 0.0
    if external_field is not None:
        ext = float(np.dot(system.mass, external_field.potential(system.pos)))
    return EnergyBreakdown(kinetic=kinetic, mutual=mutual, external=ext)


def angular_momentum(system) -> np.ndarray:
    """Total angular momentum about the origin, shape ``(3,)``."""
    l = np.cross(system.pos, system.vel)
    return (system.mass[:, None] * l).sum(axis=0)


class EnergyTracker:
    """Tracks relative energy error against the initial energy.

    The standard N-body accuracy metric is
    ``|E(t) - E(0)| / |E(0)|``; the paper's accuracy requirement
    (Section 3) is that close encounters be integrated accurately enough
    that this stays small over the whole run.
    """

    def __init__(self, eps: float, external_field=None) -> None:
        self.eps = float(eps)
        self.external_field = external_field
        self._e0: float | None = None
        self.samples: list[tuple[float, float]] = []

    def start(self, system) -> float:
        """Record the reference energy; returns it."""
        self._e0 = energy(system, self.eps, self.external_field).total
        self.samples = [(float(system.t[0]), 0.0)]
        return self._e0

    def restore(
        self, reference_energy: float, max_error: float = 0.0, t: float = 0.0
    ) -> None:
        """Re-arm the tracker from checkpointed state (instead of
        :meth:`start`, which would re-baseline on the *current* energy
        and hide any drift accumulated before the restart)."""
        self._e0 = float(reference_energy)
        self.samples = [(float(t), float(max_error))]

    @property
    def reference_energy(self) -> float:
        if self._e0 is None:
            raise RuntimeError("EnergyTracker.start() was never called")
        return self._e0

    def sample(self, system) -> float:
        """Record and return the current relative energy error."""
        e = energy(system, self.eps, self.external_field).total
        err = abs(e - self.reference_energy) / abs(self.reference_energy)
        self.samples.append((float(system.t[0]), err))
        return err

    @property
    def max_error(self) -> float:
        """Largest relative error seen so far."""
        return max(err for _, err in self.samples) if self.samples else 0.0
