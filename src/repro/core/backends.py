"""Force-backend interface and the pure-host reference backend.

The integration driver (:mod:`repro.core.integrator`) is agnostic about
*where* forces come from — exactly the GRAPE design split (Figure 1 of
the paper: the host does the time integration, the special-purpose
hardware does the force loop).  Backends implement:

``load(system)``
    One-time ingest of the particle set (GRAPE: fill the j-particle
    memories across boards).
``forces_on(system, active, t_now)``
    Return ``(acc, jerk)`` on the active block, summed over **all**
    particles predicted to ``t_now``, excluding self-interaction.
``push_updates(system, active)``
    Inform the backend that the active particles were corrected (GRAPE:
    rewrite those j-memory slots over the host interface).

Available implementations:

* :class:`HostDirectBackend` (here) — the reference: predict on the host,
  vectorised direct summation (what you would run with no GRAPE at all).
* :class:`repro.grape.system.Grape6Backend` — the GRAPE-6 simulator with
  its full performance model.
* :class:`repro.baselines.tree.TreeBackend` — Barnes–Hut approximation,
  the paper's Section 3 counterfactual.
"""

from __future__ import annotations

import numpy as np

from .forces import InteractionCounter

__all__ = ["ForceBackend", "HostDirectBackend"]


class ForceBackend:
    """Abstract force engine consumed by :class:`repro.core.integrator.Simulation`."""

    #: Interaction counter; concrete backends must bind one.
    counter: InteractionCounter

    def load(self, system) -> None:
        """Ingest the full particle set before integration starts."""
        raise NotImplementedError

    def forces_on(self, system, active: np.ndarray, t_now: float):
        """Force and jerk on ``active`` from all particles at ``t_now``.

        Returns ``(acc, jerk)`` with shapes ``(len(active), 3)``.
        Implementations must use predicted source positions/velocities
        and must exclude each active particle's self-interaction.
        """
        raise NotImplementedError

    def push_updates(self, system, active: np.ndarray) -> None:
        """Notify the backend that ``active`` rows of ``system`` changed."""
        raise NotImplementedError

    def potential(self, system) -> np.ndarray:
        """Mutual potential per unit mass on every particle (diagnostics)."""
        raise NotImplementedError


class HostDirectBackend(ForceBackend):
    """Reference backend: host-side prediction + direct summation.

    Force evaluation goes through the :mod:`repro.accel` engine's
    ``acc_jerk_active`` op — preallocated workspace tiles, optional
    j-axis threading, and (for small blocks against large N) the fused
    per-chunk source predictor that skips the full ``predict_system``
    sweep.

    Parameters
    ----------
    eps:
        Plummer softening applied to every pairwise interaction.
    engine:
        A :class:`repro.accel.KernelEngine`; defaults to the shared
        process-wide engine.
    """

    def __init__(self, eps: float, engine=None) -> None:
        if eps < 0:
            raise ValueError("softening must be non-negative")
        self.eps = float(eps)
        self.counter = InteractionCounter()
        if engine is None:
            from ..accel import get_engine

            engine = get_engine()
        self.engine = engine

    def load(self, system) -> None:
        # The host backend reads straight from the ParticleSystem arrays;
        # nothing to stage.
        return None

    def forces_on(self, system, active: np.ndarray, t_now: float):
        return self.engine.acc_jerk_active(
            system, np.asarray(active), t_now, self.eps, counter=self.counter
        )

    def push_updates(self, system, active: np.ndarray) -> None:
        return None

    def potential(self, system) -> np.ndarray:
        n = system.n
        return self.engine.pairwise_potential(
            system.pos, system.pos, system.mass, self.eps, self_indices=np.arange(n)
        )
