"""Predictor polynomials for the individual-timestep algorithm.

Under individual timesteps each particle's full state lives at its own
time :math:`t_j`.  When the force on an active particle is evaluated at
system time :math:`t`, every *source* particle must first be *predicted*
to :math:`t` with the low-order Taylor expansion

.. math::

    \\mathbf{r}_p = \\mathbf{r} + \\mathbf{v}\\,\\delta t
        + \\tfrac{1}{2}\\mathbf{a}\\,\\delta t^2
        + \\tfrac{1}{6}\\dot{\\mathbf{a}}\\,\\delta t^3,
    \\qquad
    \\mathbf{v}_p = \\mathbf{v} + \\mathbf{a}\\,\\delta t
        + \\tfrac{1}{2}\\dot{\\mathbf{a}}\\,\\delta t^2,

with :math:`\\delta t = t - t_j`.  On GRAPE-6 this runs on the dedicated
on-chip predictor pipeline (one per chip, Figure 9 of the paper); in this
library the same arithmetic is exposed here and reused by both the host
integrator and the GRAPE chip model so the two are bit-identical by
construction (unless the chip model's reduced-precision emulation is
switched on).
"""

from __future__ import annotations

import numpy as np

__all__ = ["predict_positions", "predict_velocities", "predict_system"]


def predict_positions(
    pos: np.ndarray,
    vel: np.ndarray,
    acc: np.ndarray,
    jerk: np.ndarray,
    dt: np.ndarray,
) -> np.ndarray:
    """Third-order position prediction; ``dt`` broadcast over rows."""
    dt = np.asarray(dt, dtype=np.float64)[..., None]
    return pos + dt * (vel + dt * (0.5 * acc + (dt / 6.0) * jerk))


def predict_velocities(
    vel: np.ndarray,
    acc: np.ndarray,
    jerk: np.ndarray,
    dt: np.ndarray,
) -> np.ndarray:
    """Second-order velocity prediction; ``dt`` broadcast over rows."""
    dt = np.asarray(dt, dtype=np.float64)[..., None]
    return vel + dt * (acc + 0.5 * dt * jerk)


def predict_system(system, t_now: float, out_pos=None, out_vel=None):
    """Predict every particle of ``system`` to time ``t_now``.

    Writes into ``system.pred_pos`` / ``system.pred_vel`` (or the supplied
    output arrays) and returns ``(pred_pos, pred_vel)``.  Particles whose
    own time equals ``t_now`` get an exact copy (the Taylor series with
    ``dt`` = 0), so no special-casing is needed.
    """
    dt = t_now - system.t
    pred_pos = predict_positions(system.pos, system.vel, system.acc, system.jerk, dt)
    pred_vel = predict_velocities(system.vel, system.acc, system.jerk, dt)
    if out_pos is None:
        out_pos = system.pred_pos
    if out_vel is None:
        out_vel = system.pred_vel
    out_pos[...] = pred_pos
    out_vel[...] = pred_vel
    return out_pos, out_vel
