"""External force fields.

The paper treats the Sun's gravity as an external potential rather than
as an N-body particle: "All gravitational interactions (except for the
Solar gravity, which is treated as an external potential field) is
softened" (Section 2).  Keeping the Sun external removes the dominant
central force from the pairwise sum (it is analytic and unsoftened) and
is also what the production GRAPE-6 planetesimal codes did on the host.

External fields implement acceleration *and jerk* so they compose with
the 4th-order Hermite integrator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ExternalField", "NullField", "KeplerField", "CompositeField"]


class ExternalField:
    """Interface for an analytic external force field."""

    def acc_jerk(self, pos: np.ndarray, vel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Acceleration and jerk at phase-space points ``(pos, vel)``.

        Both returned arrays have shape ``(n, 3)``.
        """
        raise NotImplementedError

    def potential(self, pos: np.ndarray) -> np.ndarray:
        """Potential per unit mass at ``pos``; shape ``(n,)``."""
        raise NotImplementedError


class NullField(ExternalField):
    """No external field (isolated N-body system)."""

    def acc_jerk(self, pos, vel):
        pos = np.atleast_2d(pos)
        z = np.zeros_like(pos, dtype=np.float64)
        return z, z.copy()

    def potential(self, pos):
        pos = np.atleast_2d(pos)
        return np.zeros(pos.shape[0])


class KeplerField(ExternalField):
    """Point-mass (Solar) gravity centred at the origin.

    .. math::

        \\mathbf{a} = -\\frac{M\\,\\mathbf{r}}{r^3}, \\qquad
        \\dot{\\mathbf{a}} = -M\\left[\\frac{\\mathbf{v}}{r^3}
            - \\frac{3 (\\mathbf{r}\\cdot\\mathbf{v})\\,\\mathbf{r}}{r^5}\\right].

    Unsoftened, per the paper.  ``mass`` defaults to 1 (the code unit
    solar mass).
    """

    def __init__(self, mass: float = 1.0) -> None:
        if mass <= 0:
            raise ConfigurationError("central mass must be positive")
        self.mass = float(mass)

    def acc_jerk(self, pos, vel):
        pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
        vel = np.atleast_2d(np.asarray(vel, dtype=np.float64))
        r2 = np.einsum("ij,ij->i", pos, pos)
        if np.any(r2 == 0.0):
            raise ConfigurationError("particle at the origin of a KeplerField")
        inv_r3 = 1.0 / (r2 * np.sqrt(r2))
        rv = np.einsum("ij,ij->i", pos, vel)
        acc = -self.mass * pos * inv_r3[:, None]
        jerk = -self.mass * (vel * inv_r3[:, None] - 3.0 * (rv / r2)[:, None] * pos * inv_r3[:, None])
        return acc, jerk

    def potential(self, pos):
        pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
        r = np.linalg.norm(pos, axis=1)
        return -self.mass / r


class CompositeField(ExternalField):
    """Sum of several external fields."""

    def __init__(self, fields) -> None:
        self.fields = list(fields)
        if not self.fields:
            raise ConfigurationError("CompositeField needs at least one field")

    def acc_jerk(self, pos, vel):
        acc_total = None
        jerk_total = None
        for f in self.fields:
            a, j = f.acc_jerk(pos, vel)
            if acc_total is None:
                acc_total, jerk_total = a.copy(), j.copy()
            else:
                acc_total += a
                jerk_total += j
        return acc_total, jerk_total

    def potential(self, pos):
        phi = None
        for f in self.fields:
            p = f.potential(pos)
            phi = p.copy() if phi is None else phi + p
        return phi
