"""System of units used throughout the reproduction.

The paper (Section 2) works in *heliocentric gravitational units*:

* length unit  = 1 astronomical unit (AU)
* mass unit    = 1 solar mass (Msun)
* G            = 1

In these units one year is ``2*pi`` time units, and a circular orbit at
``r`` AU has period ``2*pi*r**1.5`` (Kepler's third law with M_sun = 1).

This module provides conversion helpers and a couple of derived quantities
(orbital period, circular velocity, Hill radius) that the initial-condition
generators and analysis code share.  Everything is pure NumPy and accepts
scalars or arrays.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "TWO_PI",
    "YEAR",
    "AU_IN_M",
    "MSUN_IN_KG",
    "G_SI",
    "years_to_code",
    "code_to_years",
    "au_to_m",
    "m_to_au",
    "msun_to_kg",
    "kg_to_msun",
    "velocity_code_to_si",
    "orbital_period",
    "circular_velocity",
    "keplerian_omega",
    "hill_radius",
    "escape_velocity",
]

TWO_PI = 2.0 * math.pi

#: One Julian year expressed in code time units (G = Msun = AU = 1).
YEAR = TWO_PI

#: One astronomical unit in metres (IAU 2012 definition).
AU_IN_M = 1.495978707e11

#: One solar mass in kilograms.
MSUN_IN_KG = 1.98892e30

#: Newton's constant in SI units.
G_SI = 6.674e-11


def years_to_code(t_years):
    """Convert a time in Julian years to code units (1 yr = 2*pi)."""
    return np.asarray(t_years, dtype=float) * TWO_PI


def code_to_years(t_code):
    """Convert a time in code units to Julian years."""
    return np.asarray(t_code, dtype=float) / TWO_PI


def au_to_m(x_au):
    """Convert a length in AU to metres."""
    return np.asarray(x_au, dtype=float) * AU_IN_M


def m_to_au(x_m):
    """Convert a length in metres to AU."""
    return np.asarray(x_m, dtype=float) / AU_IN_M


def msun_to_kg(m):
    """Convert a mass in solar masses to kilograms."""
    return np.asarray(m, dtype=float) * MSUN_IN_KG


def kg_to_msun(m):
    """Convert a mass in kilograms to solar masses."""
    return np.asarray(m, dtype=float) / MSUN_IN_KG


def velocity_code_to_si(v_code):
    """Convert a velocity in code units to metres per second.

    The code velocity unit is AU per (yr / 2*pi); the Earth's circular
    velocity at 1 AU is exactly 1 code unit = 29.78 km/s.
    """
    year_seconds = 365.25 * 86400.0
    return np.asarray(v_code, dtype=float) * AU_IN_M / (year_seconds / TWO_PI)


def orbital_period(a, m_central=1.0):
    """Orbital period of a circular orbit with semi-major axis ``a`` (AU).

    In code units ``P = 2*pi*sqrt(a**3 / m_central)``; with
    ``m_central = 1`` and ``a = 1`` this is one year (``2*pi`` code units).
    """
    a = np.asarray(a, dtype=float)
    return TWO_PI * np.sqrt(a**3 / m_central)


def circular_velocity(a, m_central=1.0):
    """Circular orbital velocity at radius ``a`` around mass ``m_central``."""
    a = np.asarray(a, dtype=float)
    return np.sqrt(m_central / a)


def keplerian_omega(a, m_central=1.0):
    """Keplerian angular frequency at radius ``a``."""
    a = np.asarray(a, dtype=float)
    return np.sqrt(m_central / a**3)


def hill_radius(a, m, m_central=1.0):
    """Hill radius of a body of mass ``m`` orbiting at ``a``.

    ``r_H = a * (m / (3 m_central))**(1/3)``.  The paper notes its
    softening (0.008 AU) is two orders of magnitude below the protoplanet
    Hill radius, which this helper lets tests verify.
    """
    a = np.asarray(a, dtype=float)
    m = np.asarray(m, dtype=float)
    return a * np.cbrt(m / (3.0 * m_central))


def escape_velocity(r, m_central=1.0):
    """Escape velocity from radius ``r`` around mass ``m_central``."""
    r = np.asarray(r, dtype=float)
    return np.sqrt(2.0 * m_central / r)
