"""Terminal-friendly visualisation helpers (ASCII figures).

The paper's Figure 13 is a pair of (x, y) scatter plots of the
planetesimal disk.  This module renders the same views as character
rasters so the examples can "show the figure" without any plotting
dependency:

* :func:`scatter_map` — 2-D density raster of particle positions;
* :func:`bar_series` — horizontal bar chart for radial histograms.
"""

from __future__ import annotations

import numpy as np

from .errors import ConfigurationError

__all__ = ["scatter_map", "bar_series"]

#: Density ramp from empty to crowded.
_RAMP = " .:+*#@"


def scatter_map(
    x: np.ndarray,
    y: np.ndarray,
    extent: float,
    size: int = 41,
    markers: list | None = None,
) -> str:
    """Render points as a ``size x size`` character density map.

    Parameters
    ----------
    x, y:
        Point coordinates.
    extent:
        Half-width of the square window, centred on the origin.
    size:
        Raster resolution (odd keeps the Sun on a cell centre).
    markers:
        Optional ``(x, y, char)`` triples drawn on top (protoplanets).
    """
    if extent <= 0:
        raise ConfigurationError("extent must be positive")
    if size < 3:
        raise ConfigurationError("size must be at least 3")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)

    edges = np.linspace(-extent, extent, size + 1)
    grid, _, _ = np.histogram2d(y, x, bins=[edges, edges])
    peak = grid.max()
    raster = np.full((size, size), " ", dtype="<U1")
    if peak > 0:
        level = np.ceil(grid / peak * (len(_RAMP) - 1)).astype(int)
        for i in range(size):
            for j in range(size):
                raster[i, j] = _RAMP[level[i, j]]

    def to_cell(px: float, py: float):
        cx = int((px + extent) / (2 * extent) * size)
        cy = int((py + extent) / (2 * extent) * size)
        return cy, cx

    cy, cx = to_cell(0.0, 0.0)
    if 0 <= cy < size and 0 <= cx < size:
        raster[cy, cx] = "O"  # the Sun
    for px, py, char in markers or []:
        cy, cx = to_cell(px, py)
        if 0 <= cy < size and 0 <= cx < size:
            raster[cy, cx] = char

    # y axis printed top-down
    lines = ["".join(row) for row in raster[::-1]]
    border = "+" + "-" * size + "+"
    body = "\n".join("|" + line + "|" for line in lines)
    return f"{border}\n{body}\n{border}"


def bar_series(labels, values, width: int = 50) -> str:
    """Horizontal bar chart; one row per (label, value)."""
    values = list(values)
    labels = [str(l) for l in labels]
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must match")
    if not values:
        return ""
    peak = max(max(values), 1e-300)
    rows = []
    for label, v in zip(labels, values):
        bar = "#" * int(round(width * v / peak))
        rows.append(f"  {label:>10} |{bar:<{width}}| {v:g}")
    return "\n".join(rows)
