"""Analytic viscous-stirring estimates for the planetesimal disk.

Paper Section 2: "The gravitational relaxation of planetesimal orbits
due to mutual gravitational interaction is an elementary process that
controls the planetesimal evolution."  This module provides the
classical two-body-relaxation estimate of that process so simulations
can be checked against theory (the STIR ablation benchmark):

The random-velocity dispersion of a disk of equal-mass bodies grows by
encounters at the relaxation rate

.. math::

    \\frac{d\\sigma^2}{dt} \\simeq \\frac{C\\, G^2 \\rho\\, m \\ln\\Lambda}{\\sigma},

with mid-plane density :math:`\\rho = \\Sigma / (2 H)`, scale height
:math:`H = i_{rms} a`, and :math:`\\sigma \\simeq e_{rms} v_K`
(dispersion-dominated regime; Stewart & Ida 2000 give C ~ a few).  In
the equilibrium ratio :math:`i_{rms} = e_{rms}/2` this closes into an
ODE for :math:`e_{rms}^2(t)` whose self-similar solution grows as
:math:`e_{rms} \\propto t^{1/4}` — the slope the benchmark tests.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..units import circular_velocity

__all__ = ["StirringModel"]


class StirringModel:
    """Two-body relaxation stirring of a planetesimal ring.

    Parameters
    ----------
    surface_density:
        Disk surface density Sigma at the reference radius [Msun/AU^2].
    particle_mass:
        Typical (mass-weighted) planetesimal mass [Msun].
    a:
        Reference heliocentric distance [AU].
    coulomb_log:
        ln(Lambda); ~3-10 for planetesimal disks.
    prefactor:
        The dimensionless C of the rate (theory: a few; default 4).
    """

    def __init__(
        self,
        surface_density: float,
        particle_mass: float,
        a: float,
        coulomb_log: float = 5.0,
        prefactor: float = 4.0,
    ) -> None:
        if surface_density <= 0 or particle_mass <= 0 or a <= 0:
            raise ConfigurationError("disk parameters must be positive")
        if coulomb_log <= 0 or prefactor <= 0:
            raise ConfigurationError("coulomb_log and prefactor must be positive")
        self.sigma_surf = float(surface_density)
        self.m = float(particle_mass)
        self.a = float(a)
        self.ln_lambda = float(coulomb_log)
        self.c = float(prefactor)
        self.v_k = float(circular_velocity(a))

    def e2_rate(self, e_rms: float, i_rms: float | None = None) -> float:
        """Instantaneous ``d(e_rms^2)/dt`` at the given velocity state."""
        if e_rms <= 0:
            raise ConfigurationError("e_rms must be positive")
        i_rms = e_rms / 2.0 if i_rms is None else i_rms
        if i_rms <= 0:
            raise ConfigurationError("i_rms must be positive")
        scale_height = i_rms * self.a
        rho = self.sigma_surf / (2.0 * scale_height)
        sigma_v = e_rms * self.v_k
        dsigma2_dt = self.c * rho * self.m * self.ln_lambda / sigma_v
        return dsigma2_dt / self.v_k**2

    def relaxation_time(self, e_rms: float) -> float:
        """``e_rms^2 / (de_rms^2/dt)`` — the stirring e-folding time."""
        return e_rms**2 / self.e2_rate(e_rms)

    def evolve_e_rms(self, e0: float, times: np.ndarray) -> np.ndarray:
        """Integrate the stirring ODE; returns ``e_rms`` at ``times``.

        With :math:`d e^2/dt = A / e^2` (the equilibrium-ratio closure,
        A constant) the solution is analytic:
        ``e^4(t) = e0^4 + 2 A t``, i.e. ``e ∝ t^{1/4}`` at late times.
        """
        if e0 <= 0:
            raise ConfigurationError("e0 must be positive")
        times = np.asarray(times, dtype=np.float64)
        if np.any(times < 0):
            raise ConfigurationError("times must be non-negative")
        # A = e^2 * rate(e): independent of e in this closure
        a_const = self.e2_rate(e0) * e0**2
        return (e0**4 + 2.0 * a_const * times) ** 0.25

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StirringModel(Sigma={self.sigma_surf:.3g}, m={self.m:.3g}, "
            f"a={self.a}, lnL={self.ln_lambda}, C={self.c})"
        )
