"""Planetesimal-disk problem setup and analysis (paper Section 2).

Public surface:

* :class:`~repro.planetesimal.disk.PlanetesimalDiskConfig` /
  :func:`~repro.planetesimal.disk.build_disk_system` — initial conditions
* :class:`~repro.planetesimal.massfunction.PowerLawMassFunction`
* :class:`~repro.planetesimal.nebula.HayashiNebula`
* :class:`~repro.planetesimal.protoplanet.Protoplanet`
* orbital-element conversions and disk/gap/scattering analysis
"""

from .analysis import (
    GapMeasurement,
    RadialProfile,
    measure_gap,
    rms_eccentricity_inclination,
    surface_density_profile,
    velocity_dispersion,
)
from .disk import PlanetesimalDiskConfig, build_disk_system, sample_ring_radii
from .massfunction import PowerLawMassFunction
from .migration import MigrationRecord, MigrationTracker
from .nebula import HayashiNebula, ring_mass
from .orbital import (
    OrbitalElements,
    cartesian_to_elements,
    elements_to_cartesian,
    propagate_kepler,
    solve_kepler,
)
from .accretion import AccretionHistory, MassSpectrum
from .protoplanet import Protoplanet, default_protoplanets, protoplanet_states
from .resonances import (
    Resonance,
    classify_resonant,
    resonance_ladder,
    resonance_semi_major_axis,
)
from .scattering import FateCounts, ScatteringMonitor, classify_fates
from .sizes import ICE_DENSITY_CODE, mass_from_radius, radius_from_mass
from .stirring import StirringModel

__all__ = [
    "GapMeasurement",
    "RadialProfile",
    "measure_gap",
    "rms_eccentricity_inclination",
    "surface_density_profile",
    "velocity_dispersion",
    "PlanetesimalDiskConfig",
    "build_disk_system",
    "sample_ring_radii",
    "PowerLawMassFunction",
    "HayashiNebula",
    "ring_mass",
    "MigrationRecord",
    "MigrationTracker",
    "OrbitalElements",
    "cartesian_to_elements",
    "elements_to_cartesian",
    "propagate_kepler",
    "solve_kepler",
    "Protoplanet",
    "default_protoplanets",
    "protoplanet_states",
    "FateCounts",
    "ScatteringMonitor",
    "classify_fates",
    "AccretionHistory",
    "MassSpectrum",
    "ICE_DENSITY_CODE",
    "mass_from_radius",
    "radius_from_mass",
    "StirringModel",
    "Resonance",
    "classify_resonant",
    "resonance_ladder",
    "resonance_semi_major_axis",
]
