"""Scattering statistics: the Oort-cloud / ejection bookkeeping.

Section 2 of the paper: "In the formation process of Neptune, some
planetesimals are accreted and others are scattered away from the solar
system by Neptune.  This scattering efficiency is an important key..."

This module classifies planetesimals by orbital fate and accumulates
counts over a run:

* ``bound_disk``   — still on a low-eccentricity orbit inside the ring;
* ``excited``      — bound but strongly stirred (e above a threshold);
* ``oort_candidate`` — bound but with aphelion beyond a distance cut
  (the classical Oort-cloud injection channel: scattered outward but
  not unbound);
* ``ejected``      — hyperbolic (e >= 1 or a < 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .orbital import cartesian_to_elements

__all__ = ["FateCounts", "classify_fates", "ScatteringMonitor"]


@dataclass(frozen=True)
class FateCounts:
    """Counts of planetesimals per dynamical fate at one instant."""

    bound_disk: int
    excited: int
    oort_candidate: int
    ejected: int

    @property
    def total(self) -> int:
        return self.bound_disk + self.excited + self.oort_candidate + self.ejected

    def fractions(self) -> dict:
        """Fate fractions (empty dict for an empty census)."""
        if self.total == 0:
            return {}
        return {
            "bound_disk": self.bound_disk / self.total,
            "excited": self.excited / self.total,
            "oort_candidate": self.oort_candidate / self.total,
            "ejected": self.ejected / self.total,
        }


def classify_fates(
    pos: np.ndarray,
    vel: np.ndarray,
    mu: float = 1.0,
    e_excited: float = 0.2,
    aphelion_cut: float = 100.0,
) -> FateCounts:
    """Classify each particle's instantaneous orbital fate.

    Parameters
    ----------
    e_excited:
        Eccentricity above which a bound orbit counts as "excited".
    aphelion_cut:
        Aphelion distance [AU] beyond which a bound orbit is an
        Oort-cloud candidate.
    """
    el = cartesian_to_elements(pos, vel, mu=mu)
    hyperbolic = (el.e >= 1.0) | (el.a <= 0.0)
    aphelion = np.where(hyperbolic, np.inf, el.a * (1.0 + el.e))
    oort = ~hyperbolic & (aphelion > aphelion_cut)
    excited = ~hyperbolic & ~oort & (el.e > e_excited)
    disk = ~hyperbolic & ~oort & ~excited
    return FateCounts(
        bound_disk=int(disk.sum()),
        excited=int(excited.sum()),
        oort_candidate=int(oort.sum()),
        ejected=int(hyperbolic.sum()),
    )


class ScatteringMonitor:
    """Samples fate counts over a run and keeps the time series."""

    def __init__(self, mu: float = 1.0, e_excited: float = 0.2, aphelion_cut: float = 100.0):
        self.mu = mu
        self.e_excited = e_excited
        self.aphelion_cut = aphelion_cut
        self.times: list[float] = []
        self.series: list[FateCounts] = []

    def sample(self, time: float, pos: np.ndarray, vel: np.ndarray) -> FateCounts:
        """Classify now and append to the series; returns the counts."""
        counts = classify_fates(
            pos, vel, mu=self.mu, e_excited=self.e_excited, aphelion_cut=self.aphelion_cut
        )
        self.times.append(float(time))
        self.series.append(counts)
        return counts

    def latest(self) -> FateCounts:
        if not self.series:
            raise RuntimeError("no samples recorded")
        return self.series[-1]
