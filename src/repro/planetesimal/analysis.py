"""Disk analysis: radial profiles, gap metrics, velocity state.

These are the measurements behind the paper's Figure 13 ("Gap of the
distribution is formed near the radius of protoplanets") and the
Section 2 science goals (velocity distribution of planetesimals, which
sets the comet-formation rate).

All functions take a *synchronised* particle system (or raw arrays) and
a mask selecting the planetesimal subset — protoplanets must be excluded
from disk statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .orbital import cartesian_to_elements

__all__ = [
    "RadialProfile",
    "surface_density_profile",
    "GapMeasurement",
    "measure_gap",
    "rms_eccentricity_inclination",
    "velocity_dispersion",
]


@dataclass(frozen=True)
class RadialProfile:
    """Binned radial surface-density profile."""

    r_edges: np.ndarray  #: bin edges [AU], shape (nbins+1,)
    r_centers: np.ndarray  #: bin centres [AU], shape (nbins,)
    sigma: np.ndarray  #: surface mass density [Msun/AU^2], shape (nbins,)
    counts: np.ndarray  #: particles per bin, shape (nbins,)

    def sigma_at(self, r: float) -> float:
        """Surface density of the bin containing radius ``r``.

        Bin membership follows ``np.histogram``: bin ``i`` covers
        ``[edge_i, edge_{i+1})``, so a radius exactly on an interior edge
        belongs to the bin to its right.
        """
        idx = np.searchsorted(self.r_edges, r, side="right") - 1
        if idx < 0 or idx >= len(self.sigma):
            raise ConfigurationError(f"radius {r} outside profiled range")
        return float(self.sigma[idx])


def surface_density_profile(
    pos: np.ndarray,
    mass: np.ndarray,
    r_min: float,
    r_max: float,
    nbins: int = 40,
) -> RadialProfile:
    """Azimuthally averaged surface density in cylindrical annuli."""
    if nbins < 1:
        raise ConfigurationError("nbins must be positive")
    pos = np.atleast_2d(pos)
    r_cyl = np.hypot(pos[:, 0], pos[:, 1])
    edges = np.linspace(r_min, r_max, nbins + 1)
    mass_in_bin, _ = np.histogram(r_cyl, bins=edges, weights=mass)
    counts, _ = np.histogram(r_cyl, bins=edges)
    areas = np.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
    return RadialProfile(
        r_edges=edges,
        r_centers=0.5 * (edges[1:] + edges[:-1]),
        sigma=mass_in_bin / areas,
        counts=counts,
    )


@dataclass(frozen=True)
class GapMeasurement:
    """Depth of the surface-density gap carved near one protoplanet.

    ``depth`` is ``1 - sigma_gap / sigma_ref``: zero for an unperturbed
    disk, approaching one as the protoplanet clears its feeding zone.
    ``sigma_ref`` is the mean density of reference annuli a few Hill
    radii away on both sides.
    """

    radius_au: float
    sigma_gap: float
    sigma_ref: float

    @property
    def depth(self) -> float:
        if self.sigma_ref <= 0.0:
            return 0.0
        return 1.0 - self.sigma_gap / self.sigma_ref


def measure_gap(
    profile: RadialProfile,
    protoplanet_radius: float,
    gap_half_width: float,
    ref_offset: float | None = None,
    ref_width: float | None = None,
) -> GapMeasurement:
    """Measure gap depth at ``protoplanet_radius`` from a radial profile.

    Parameters
    ----------
    profile:
        Output of :func:`surface_density_profile`.
    protoplanet_radius:
        Orbital radius of the protoplanet [AU].
    gap_half_width:
        Half-width of the gap window [AU]; a few Hill radii is the
        physically motivated choice.
    ref_offset, ref_width:
        Centre offset and width of the two reference windows (defaults:
        ``3 * gap_half_width`` and ``gap_half_width``).
    """
    ref_offset = 3.0 * gap_half_width if ref_offset is None else ref_offset
    ref_width = gap_half_width if ref_width is None else ref_width

    r = profile.r_centers
    gap_mask = np.abs(r - protoplanet_radius) <= gap_half_width
    ref_mask = (
        np.abs(np.abs(r - protoplanet_radius) - ref_offset) <= ref_width / 2.0
    )
    if not np.any(gap_mask) or not np.any(ref_mask):
        raise ConfigurationError(
            "profile bins too coarse for the requested gap/reference windows"
        )
    return GapMeasurement(
        radius_au=protoplanet_radius,
        sigma_gap=float(profile.sigma[gap_mask].mean()),
        sigma_ref=float(profile.sigma[ref_mask].mean()),
    )


def rms_eccentricity_inclination(
    pos: np.ndarray, vel: np.ndarray, mu: float = 1.0
) -> tuple[float, float]:
    """RMS eccentricity and inclination of bound particles.

    Unbound (scattered) particles are excluded — they no longer belong to
    the disk's velocity state.
    """
    el = cartesian_to_elements(pos, vel, mu=mu)
    bound = (el.e < 1.0) & (el.a > 0.0)
    if not np.any(bound):
        return float("nan"), float("nan")
    e_rms = float(np.sqrt(np.mean(el.e[bound] ** 2)))
    i_rms = float(np.sqrt(np.mean(el.inc[bound] ** 2)))
    return e_rms, i_rms


def velocity_dispersion(pos: np.ndarray, vel: np.ndarray) -> float:
    """RMS random (non-circular) velocity of disk particles.

    Subtracts the local circular Keplerian velocity vector from each
    particle and returns the RMS of the residual — the "velocity
    dispersion" whose growth by viscous stirring and protoplanet
    scattering drives the disk evolution.
    """
    pos = np.atleast_2d(pos)
    vel = np.atleast_2d(vel)
    r_cyl = np.hypot(pos[:, 0], pos[:, 1])
    v_circ = 1.0 / np.sqrt(r_cyl)
    # Unit azimuthal vector (prograde).
    e_phi = np.stack([-pos[:, 1] / r_cyl, pos[:, 0] / r_cyl, np.zeros_like(r_cyl)], axis=-1)
    residual = vel - v_circ[:, None] * e_phi
    return float(np.sqrt(np.mean(np.einsum("ij,ij->i", residual, residual))))
