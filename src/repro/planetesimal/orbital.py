"""Keplerian orbital mechanics: elements ↔ Cartesian conversions.

Used by the initial-condition generators (place planetesimals on nearly
circular, nearly coplanar heliocentric orbits) and by the analysis code
(extract eccentricity/inclination evolution and detect scattered
orbits).  All functions are vectorised over the leading axis and work in
code units (G = 1, central mass ``mu = G*M`` given explicitly).

Conventions: standard ecliptic elements
``(a, e, inc, Omega, omega, M)`` — semi-major axis, eccentricity,
inclination, longitude of ascending node, argument of pericentre, mean
anomaly; angles in radians.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "OrbitalElements",
    "solve_kepler",
    "elements_to_cartesian",
    "cartesian_to_elements",
    "propagate_kepler",
]


class OrbitalElements(NamedTuple):
    """Bundle of orbital-element arrays (all shape ``(n,)``)."""

    a: np.ndarray  #: semi-major axis (negative for hyperbolic orbits)
    e: np.ndarray  #: eccentricity
    inc: np.ndarray  #: inclination [rad]
    Omega: np.ndarray  #: longitude of ascending node [rad]
    omega: np.ndarray  #: argument of pericentre [rad]
    M: np.ndarray  #: mean anomaly [rad]


def solve_kepler(mean_anomaly: np.ndarray, e: np.ndarray, tol: float = 1e-13, max_iter: int = 64) -> np.ndarray:
    """Solve Kepler's equation ``E - e sin E = M`` for elliptic orbits.

    Newton–Raphson with a Danby-style starting guess; converges to
    ``tol`` in a handful of iterations for all ``0 <= e < 1``.

    Returns the eccentric anomaly ``E`` with the same shape as ``M``.
    """
    M = np.asarray(mean_anomaly, dtype=np.float64)
    e = np.broadcast_to(np.asarray(e, dtype=np.float64), M.shape)
    if np.any((e < 0) | (e >= 1)):
        raise ConfigurationError("solve_kepler requires 0 <= e < 1")
    # Wrap M into [-pi, pi) for a well-behaved starting guess.
    M_wrapped = np.mod(M + np.pi, 2.0 * np.pi) - np.pi
    E = M_wrapped + 0.85 * e * np.sign(M_wrapped)
    E = np.where(M_wrapped == 0.0, 0.0, E)
    for _ in range(max_iter):
        f = E - e * np.sin(E) - M_wrapped
        fp = 1.0 - e * np.cos(E)
        dE = f / fp
        E = E - dE
        if np.all(np.abs(dE) < tol):
            break
    return E + (M - M_wrapped)


def elements_to_cartesian(
    elements: OrbitalElements, mu: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Heliocentric position and velocity from orbital elements.

    Returns ``(pos, vel)`` with shapes ``(n, 3)``.
    """
    a = np.asarray(elements.a, dtype=np.float64)
    e = np.asarray(elements.e, dtype=np.float64)
    inc = np.asarray(elements.inc, dtype=np.float64)
    Om = np.asarray(elements.Omega, dtype=np.float64)
    om = np.asarray(elements.omega, dtype=np.float64)
    M = np.asarray(elements.M, dtype=np.float64)
    if np.any(a <= 0):
        raise ConfigurationError("elements_to_cartesian requires elliptic orbits (a > 0)")

    E = solve_kepler(M, e)
    cosE, sinE = np.cos(E), np.sin(E)
    # Perifocal coordinates.
    b_over_a = np.sqrt(1.0 - e**2)
    x_pf = a * (cosE - e)
    y_pf = a * b_over_a * sinE
    r = a * (1.0 - e * cosE)
    n_mot = np.sqrt(mu / a**3)
    vx_pf = -a * n_mot * sinE * a / r
    vy_pf = a * n_mot * b_over_a * cosE * a / r

    cO, sO = np.cos(Om), np.sin(Om)
    co, so = np.cos(om), np.sin(om)
    ci, si = np.cos(inc), np.sin(inc)

    # Rotation matrix perifocal -> ecliptic, applied per particle.
    r11 = cO * co - sO * so * ci
    r12 = -cO * so - sO * co * ci
    r21 = sO * co + cO * so * ci
    r22 = -sO * so + cO * co * ci
    r31 = so * si
    r32 = co * si

    pos = np.stack(
        [r11 * x_pf + r12 * y_pf, r21 * x_pf + r22 * y_pf, r31 * x_pf + r32 * y_pf],
        axis=-1,
    )
    vel = np.stack(
        [r11 * vx_pf + r12 * vy_pf, r21 * vx_pf + r22 * vy_pf, r31 * vx_pf + r32 * vy_pf],
        axis=-1,
    )
    return pos, vel


def propagate_kepler(
    pos: np.ndarray, vel: np.ndarray, dt: float, mu: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Analytically advance bound two-body orbits by ``dt``.

    Exact (to round-off) propagation along the Keplerian ellipse via
    the element representation: convert to elements, advance the mean
    anomaly by ``n * dt``, convert back.  All orbits must be elliptic.

    The integrator's two-body validation tests use this as ground
    truth; it is also the cheap way to move test particles through a
    pure solar field.
    """
    el = cartesian_to_elements(pos, vel, mu=mu)
    if np.any((el.e >= 1.0) | (el.a <= 0.0)):
        raise ConfigurationError("propagate_kepler requires bound orbits")
    n_motion = np.sqrt(mu / el.a**3)
    advanced = OrbitalElements(
        a=el.a,
        e=el.e,
        inc=el.inc,
        Omega=el.Omega,
        omega=el.omega,
        M=np.mod(el.M + n_motion * dt, 2.0 * np.pi),
    )
    return elements_to_cartesian(advanced, mu=mu)


def cartesian_to_elements(pos: np.ndarray, vel: np.ndarray, mu: float = 1.0) -> OrbitalElements:
    """Orbital elements from heliocentric position and velocity.

    Hyperbolic orbits get ``a < 0``, ``e > 1`` and a mean anomaly of NaN
    (the elliptic mean anomaly is undefined); the scattering analysis
    keys off ``e > 1`` / ``a < 0`` to count ejections.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
    vel = np.atleast_2d(np.asarray(vel, dtype=np.float64))

    r = np.linalg.norm(pos, axis=1)
    v2 = np.einsum("ij,ij->i", vel, vel)
    rv = np.einsum("ij,ij->i", pos, vel)

    # Specific angular momentum.
    h_vec = np.cross(pos, vel)
    h = np.linalg.norm(h_vec, axis=1)

    # Semi-major axis from the vis-viva energy.
    energy_ = 0.5 * v2 - mu / r
    with np.errstate(divide="ignore"):
        a = -0.5 * mu / energy_
    a[energy_ == 0.0] = np.inf

    # Eccentricity vector.
    e_vec = (np.cross(vel, h_vec) / mu) - pos / r[:, None]
    e = np.linalg.norm(e_vec, axis=1)

    # Inclination.
    inc = np.arccos(np.clip(h_vec[:, 2] / h, -1.0, 1.0))

    # Node vector (points to the ascending node).
    node = np.stack([-h_vec[:, 1], h_vec[:, 0], np.zeros_like(h)], axis=-1)
    node_norm = np.linalg.norm(node, axis=1)
    planar = node_norm < 1e-14  # equatorial orbit: node undefined
    safe_node = np.where(planar[:, None], np.array([1.0, 0.0, 0.0]), node)
    safe_node_norm = np.where(planar, 1.0, node_norm)

    Omega = np.arctan2(safe_node[:, 1], safe_node[:, 0])
    Omega = np.where(planar, 0.0, Omega)

    # Argument of pericentre from node and eccentricity vectors.
    circular = e < 1e-14
    safe_e_vec = np.where(circular[:, None], safe_node, e_vec)
    safe_e = np.where(circular, 1.0, np.where(e == 0.0, 1.0, e))
    cos_om = np.einsum("ij,ij->i", safe_node, safe_e_vec) / (safe_node_norm * np.linalg.norm(safe_e_vec, axis=1))
    omega = np.arccos(np.clip(cos_om, -1.0, 1.0))
    omega = np.where(safe_e_vec[:, 2] < 0.0, 2.0 * np.pi - omega, omega)
    omega = np.where(circular, 0.0, omega)

    # True anomaly -> eccentric -> mean (elliptic only).
    cos_nu = np.einsum("ij,ij->i", safe_e_vec, pos) / (np.linalg.norm(safe_e_vec, axis=1) * r)
    nu = np.arccos(np.clip(cos_nu, -1.0, 1.0))
    nu = np.where(rv < 0.0, 2.0 * np.pi - nu, nu)

    elliptic = (e < 1.0) & (a > 0.0)
    M = np.full_like(r, np.nan)
    if np.any(elliptic):
        ee = e[elliptic]
        tan_half_E = np.sqrt((1.0 - ee) / (1.0 + ee)) * np.tan(nu[elliptic] / 2.0)
        E = 2.0 * np.arctan(tan_half_E)
        M[elliptic] = E - ee * np.sin(E)
    M = np.mod(M, 2.0 * np.pi)

    return OrbitalElements(a=a, e=e, inc=inc, Omega=Omega, omega=omega, M=M)
