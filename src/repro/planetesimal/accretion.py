"""Accretion bookkeeping: mass growth and the evolving mass spectrum.

Companion analysis to the collision/merging extension
(:mod:`repro.core.collisions`): tracks how the planetesimal mass
spectrum evolves as bodies merge — the "planetary accretion" process
the paper's Section 2 frames the whole simulation with (runaway /
oligarchic growth diagnostics in the Kokubo & Ida tradition).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["MassSpectrum", "AccretionHistory"]


@dataclass(frozen=True)
class MassSpectrum:
    """Snapshot statistics of a mass distribution."""

    time: float
    n_bodies: int
    total_mass: float
    max_mass: float
    mean_mass: float
    #: max / mean — the runaway-growth indicator (grows without bound
    #: during runaway accretion, saturates in the oligarchic phase).
    growth_ratio: float

    @classmethod
    def measure(cls, time: float, mass: np.ndarray) -> "MassSpectrum":
        mass = np.asarray(mass, dtype=np.float64)
        if mass.size == 0:
            raise ConfigurationError("empty mass array")
        mean = float(mass.mean())
        mx = float(mass.max())
        return cls(
            time=float(time),
            n_bodies=int(mass.size),
            total_mass=float(mass.sum()),
            max_mass=mx,
            mean_mass=mean,
            growth_ratio=mx / mean if mean > 0 else float("inf"),
        )


class AccretionHistory:
    """Time series of :class:`MassSpectrum` snapshots over a run."""

    def __init__(self) -> None:
        self.snapshots: list[MassSpectrum] = []

    def sample(self, time: float, mass: np.ndarray) -> MassSpectrum:
        snap = MassSpectrum.measure(time, mass)
        self.snapshots.append(snap)
        return snap

    def __len__(self) -> int:
        return len(self.snapshots)

    @property
    def initial(self) -> MassSpectrum:
        if not self.snapshots:
            raise ConfigurationError("no snapshots recorded")
        return self.snapshots[0]

    @property
    def latest(self) -> MassSpectrum:
        if not self.snapshots:
            raise ConfigurationError("no snapshots recorded")
        return self.snapshots[-1]

    def mergers_so_far(self) -> int:
        """Bodies lost to merging since the first snapshot."""
        return self.initial.n_bodies - self.latest.n_bodies

    def mass_conserved(self, rtol: float = 1e-12) -> bool:
        """Perfect merging must conserve total mass exactly."""
        m0 = self.initial.total_mass
        return abs(self.latest.total_mass - m0) <= rtol * abs(m0)

    def max_mass_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, max masses) — the largest body's growth track."""
        t = np.array([s.time for s in self.snapshots])
        m = np.array([s.max_mass for s in self.snapshots])
        return t, m
