"""Physical sizes of planetesimals: the mass–radius relation.

The paper's planetesimals are "km-sized bodies"; their physical radii
set the collision (accretion) cross-section.  For icy bodies beyond the
snow line the standard material density is ~1 g/cm^3; in code units
(Msun, AU) that is ~1.68e6 Msun/AU^3.

Scaled-down runs represent many real planetesimals by one
super-particle; accretion studies then inflate the collision radius by
a factor ``f_enhance`` (a standard device, e.g. Kokubo & Ida 1996) so
the collision *rate per unit disk mass* stays comparable.  The factor
is explicit everywhere.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..units import AU_IN_M, MSUN_IN_KG

__all__ = ["density_cgs_to_code", "ICE_DENSITY_CODE", "radius_from_mass", "mass_from_radius"]


def density_cgs_to_code(rho_g_cm3: float) -> float:
    """Convert a material density from g/cm^3 to Msun/AU^3."""
    if rho_g_cm3 <= 0:
        raise ConfigurationError("density must be positive")
    kg_m3 = rho_g_cm3 * 1000.0
    return kg_m3 * AU_IN_M**3 / MSUN_IN_KG


#: Density of icy planetesimals (1 g/cm^3) in code units.
ICE_DENSITY_CODE = density_cgs_to_code(1.0)


def radius_from_mass(mass, density: float = ICE_DENSITY_CODE, f_enhance: float = 1.0):
    """Physical (or enhanced) radius of a body of ``mass`` [AU].

    ``R = f * (3 m / (4 pi rho))**(1/3)``.  Vectorised over ``mass``.
    The paper's 2e-12 Msun planetesimal comes out at ~6.6e-7 AU
    (~100 km), i.e. "km-sized bodies" as the text says.
    """
    if density <= 0:
        raise ConfigurationError("density must be positive")
    if f_enhance <= 0:
        raise ConfigurationError("enhancement factor must be positive")
    mass = np.asarray(mass, dtype=np.float64)
    return f_enhance * np.cbrt(3.0 * mass / (4.0 * math.pi * density))


def mass_from_radius(radius, density: float = ICE_DENSITY_CODE):
    """Inverse of :func:`radius_from_mass` (no enhancement)."""
    if density <= 0:
        raise ConfigurationError("density must be positive")
    radius = np.asarray(radius, dtype=np.float64)
    return (4.0 * math.pi / 3.0) * density * radius**3
