"""Protoplanet setup: proto-Uranus and proto-Neptune.

The paper places "two massive protoplanets ... at 20 AU and 30 AU on
non-inclined circular orbits" (Section 2).  This module builds their
phase-space coordinates and provides the Hill-radius bookkeeping used to
justify the softening choice (0.008 AU is two orders of magnitude below
the protoplanet Hill radius, so the scattering cross-section is
unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..units import circular_velocity, hill_radius

__all__ = ["Protoplanet", "protoplanet_states", "default_protoplanets"]


@dataclass(frozen=True)
class Protoplanet:
    """One protoplanet on a circular, non-inclined heliocentric orbit."""

    mass: float  #: [Msun]
    radius_au: float  #: orbital radius [AU]
    phase: float = 0.0  #: initial azimuth [rad]

    def __post_init__(self) -> None:
        if self.mass <= 0 or self.radius_au <= 0:
            raise ConfigurationError("protoplanet mass and radius must be positive")

    def hill_radius(self, m_central: float = 1.0) -> float:
        """Hill radius [AU]."""
        return float(hill_radius(self.radius_au, self.mass, m_central))

    def state(self, m_central: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """Position and velocity vectors (shape ``(3,)`` each)."""
        r = self.radius_au
        v = float(circular_velocity(r, m_central))
        c, s = np.cos(self.phase), np.sin(self.phase)
        pos = np.array([r * c, r * s, 0.0])
        vel = np.array([-v * s, v * c, 0.0])
        return pos, vel


def default_protoplanets(
    mass: float | None = None,
    radii: tuple[float, float] | None = None,
) -> list[Protoplanet]:
    """The paper's pair: equal-mass protoplanets at 20 and 30 AU.

    Phases are separated by pi so the two start on opposite sides of the
    Sun (they are on non-resonant orbits; the exact phases do not matter
    statistically, but a fixed choice keeps runs reproducible).
    """
    from ..constants import PAPER_PROTOPLANET_MASS, PAPER_PROTOPLANET_RADII_AU

    mass = PAPER_PROTOPLANET_MASS if mass is None else mass
    radii = PAPER_PROTOPLANET_RADII_AU if radii is None else radii
    return [
        Protoplanet(mass=mass, radius_au=radii[0], phase=0.0),
        Protoplanet(mass=mass, radius_au=radii[1], phase=np.pi),
    ]


def protoplanet_states(
    protoplanets, m_central: float = 1.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack protoplanet states: ``(mass, pos, vel)`` arrays."""
    protoplanets = list(protoplanets)
    if not protoplanets:
        raise ConfigurationError("no protoplanets supplied")
    mass = np.array([p.mass for p in protoplanets])
    states = [p.state(m_central) for p in protoplanets]
    pos = np.stack([s[0] for s in states])
    vel = np.stack([s[1] for s in states])
    return mass, pos, vel
