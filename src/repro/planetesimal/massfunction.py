"""Planetesimal mass-function sampling.

The paper (Section 2): "The mass distribution of the planetesimals
follows N(m)dm ∝ m^-2.5, which is a stationary distribution found by
numerical simulations and confirmed by simple analytic argument", with
upper and lower cutoff masses.  This module provides exact inverse-CDF
sampling of the truncated power law plus its analytic moments so that
tests can verify both the sampler and the disk's total-mass
normalisation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["PowerLawMassFunction"]


class PowerLawMassFunction:
    """Truncated power-law mass function ``N(m) dm ∝ m**alpha dm``.

    Parameters
    ----------
    alpha:
        Exponent of the differential number distribution (the paper's
        value is -2.5).  ``alpha = -1`` is supported (log-uniform).
    m_lo, m_hi:
        Lower and upper cutoffs, ``0 < m_lo <= m_hi``.  Equal cutoffs
        give the degenerate equal-mass (delta) distribution.
    """

    def __init__(self, alpha: float, m_lo: float, m_hi: float) -> None:
        if not (0.0 < m_lo <= m_hi):
            raise ConfigurationError("need 0 < m_lo <= m_hi")
        self.alpha = float(alpha)
        self.m_lo = float(m_lo)
        self.m_hi = float(m_hi)

    @property
    def is_degenerate(self) -> bool:
        """True for the equal-mass (delta) distribution."""
        return self.m_lo == self.m_hi

    # -- analytic moments ---------------------------------------------------

    def moment(self, k: int | float) -> float:
        """``E[m**k]`` of the normalised distribution."""
        if self.is_degenerate:
            return self.m_lo**k
        a = self.alpha
        lo, hi = self.m_lo, self.m_hi

        def integral(p: float) -> float:
            # integral of m**p dm over [lo, hi]
            if np.isclose(p, -1.0):
                return float(np.log(hi / lo))
            return float((hi ** (p + 1) - lo ** (p + 1)) / (p + 1))

        return integral(a + k) / integral(a)

    def mean_mass(self) -> float:
        """Expected particle mass ``E[m]``."""
        return self.moment(1)

    def cdf(self, m: np.ndarray) -> np.ndarray:
        """Cumulative distribution function at masses ``m``."""
        if self.is_degenerate:
            return (np.asarray(m, dtype=np.float64) >= self.m_lo).astype(float)
        m = np.clip(np.asarray(m, dtype=np.float64), self.m_lo, self.m_hi)
        a1 = self.alpha + 1.0
        if np.isclose(a1, 0.0):
            return np.log(m / self.m_lo) / np.log(self.m_hi / self.m_lo)
        return (m**a1 - self.m_lo**a1) / (self.m_hi**a1 - self.m_lo**a1)

    # -- sampling ---------------------------------------------------------

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` masses by exact inverse-CDF sampling."""
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if self.is_degenerate:
            return np.full(n, self.m_lo)
        u = rng.random(n)
        a1 = self.alpha + 1.0
        if np.isclose(a1, 0.0):
            return self.m_lo * (self.m_hi / self.m_lo) ** u
        lo_p = self.m_lo**a1
        hi_p = self.m_hi**a1
        return (lo_p + u * (hi_p - lo_p)) ** (1.0 / a1)

    def scaled_to(self, n: int, total_mass: float) -> "PowerLawMassFunction":
        """A rescaled copy whose ``n`` samples average ``total_mass / n``.

        The paper's cutoffs are tied to N = 1.8e6; scaled-down runs keep
        the *total disk mass* (which sets the dynamics) fixed by scaling
        both cutoffs by the same factor, preserving the dynamic range
        ``m_hi / m_lo`` and the exponent.
        """
        if n <= 0 or total_mass <= 0:
            raise ConfigurationError("need positive n and total_mass")
        factor = (total_mass / n) / self.mean_mass()
        return PowerLawMassFunction(self.alpha, self.m_lo * factor, self.m_hi * factor)

    def constrained_to(
        self, n: int, total_mass: float, m_hi_cap: float
    ) -> "PowerLawMassFunction":
        """Rescale to ``n`` particles of total ``total_mass``, capping ``m_hi``.

        At small ``n`` the plain :meth:`scaled_to` scaling can push the
        heaviest planetesimal above the protoplanet mass, violating the
        paper's requirement that the protoplanet/planetesimal mass ratio
        stay large (Section 3).  This variant keeps the mean (and thus
        the total disk mass) fixed but *compresses the dynamic range*
        ``m_hi / m_lo`` just enough that ``m_hi <= m_hi_cap``.

        When even equal masses (``m_hi == m_lo == mean``) would exceed
        the cap — the particle count is too small for the requested disk
        mass — the equal-mass distribution is returned with a warning:
        total disk mass (the leading dynamical quantity) wins over the
        mass-ratio guard.
        """
        if m_hi_cap <= 0:
            raise ConfigurationError("m_hi_cap must be positive")
        scaled = self.scaled_to(n, total_mass)
        if scaled.m_hi <= m_hi_cap:
            return scaled
        mean = total_mass / n
        if mean >= m_hi_cap:
            import warnings

            warnings.warn(
                f"mean particle mass {mean:.3g} exceeds the mass-ratio cap "
                f"{m_hi_cap:.3g}; falling back to equal masses (increase the "
                "particle count to restore a mass spectrum)",
                stacklevel=2,
            )
            return PowerLawMassFunction(self.alpha, mean, mean)

        from scipy.optimize import brentq

        def m_hi_of_ratio(ratio: float) -> float:
            # With cutoff ratio fixed, the mean pins m_lo = mean / g(ratio)
            # where g is the mean of the unit-m_lo distribution.
            unit = PowerLawMassFunction(self.alpha, 1.0, ratio)
            return ratio * mean / unit.mean_mass()

        ratio0 = self.m_hi / self.m_lo
        # m_hi_of_ratio is continuous and increasing from `mean` (ratio->1)
        # to scaled.m_hi (ratio0); a root of m_hi - cap exists in between.
        ratio = brentq(lambda r: m_hi_of_ratio(r) - m_hi_cap, 1.0 + 1e-12, ratio0)
        m_hi = m_hi_of_ratio(ratio)
        return PowerLawMassFunction(self.alpha, m_hi / ratio, m_hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PowerLawMassFunction(alpha={self.alpha}, m_lo={self.m_lo:.4g}, "
            f"m_hi={self.m_hi:.4g})"
        )
