"""Planetesimal-disk initial conditions (the paper's Section 2 setup).

Builds the ring of planetesimals between 15 and 35 AU:

* heliocentric distance sampled from the surface-density profile
  ``Sigma(r) ∝ r**-1.5`` (so the radial number density of the sampled
  ring follows ``2*pi*r*Sigma ∝ r**-0.5``);
* masses from the truncated power law ``N(m) ∝ m**-2.5``, rescaled so
  the *total* ring mass matches the Hayashi minimum-mass nebula
  regardless of particle number (the scaling rule of DESIGN.md);
* eccentricities and inclinations Rayleigh-distributed with dispersions
  ``e_rms`` and ``i_rms = e_rms / 2`` (the equilibrium ratio of
  planetesimal dynamics), all remaining angles uniform;
* two protoplanets appended at the end of the particle array (their keys
  are the largest, so ``system.key >= n_planetesimals`` identifies
  them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    PAPER_MASS_EXPONENT,
    PAPER_MASS_HI,
    PAPER_MASS_LO,
    PAPER_N_PLANETESIMALS,
    PAPER_RING_INNER_AU,
    PAPER_RING_OUTER_AU,
    PAPER_SURFACE_DENSITY_EXPONENT,
)
from ..core.particles import ParticleSystem
from ..errors import ConfigurationError
from .massfunction import PowerLawMassFunction
from .nebula import HayashiNebula
from .orbital import OrbitalElements, elements_to_cartesian
from .protoplanet import Protoplanet, default_protoplanets, protoplanet_states

__all__ = ["PlanetesimalDiskConfig", "sample_ring_radii", "build_disk_system"]


@dataclass
class PlanetesimalDiskConfig:
    """Parameters of a (possibly scaled-down) paper disk.

    Defaults reproduce the paper's geometry with ``n_planetesimals``
    particles; set ``n_planetesimals=PAPER_N_PLANETESIMALS`` for the
    full-size configuration (the mass function then equals the paper's
    cutoffs by construction).
    """

    n_planetesimals: int = 4000
    r_inner: float = PAPER_RING_INNER_AU
    r_outer: float = PAPER_RING_OUTER_AU
    surface_density_exponent: float = PAPER_SURFACE_DENSITY_EXPONENT
    mass_exponent: float = PAPER_MASS_EXPONENT
    #: RMS eccentricity of the initial Rayleigh distribution.
    e_rms: float = 0.01
    #: RMS inclination; ``None`` means the equilibrium ``e_rms / 2``.
    i_rms: float | None = None
    #: Total planetesimal mass [Msun]; ``None`` = Hayashi ring mass.
    total_mass: float | None = None
    #: Protoplanets to embed; ``None`` = the paper's pair, ``[]`` = none.
    protoplanets: list | None = None
    #: Heaviest planetesimal as a fraction of the lightest protoplanet;
    #: keeps scaled-down runs from breaking the paper's large
    #: protoplanet/planetesimal mass-ratio requirement.  ``None`` disables.
    mass_ratio_guard: float | None = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_planetesimals < 1:
            raise ConfigurationError("need at least one planetesimal")
        if not (0.0 < self.r_inner < self.r_outer):
            raise ConfigurationError("need 0 < r_inner < r_outer")
        if self.e_rms < 0:
            raise ConfigurationError("e_rms must be non-negative")
        if self.i_rms is None:
            self.i_rms = self.e_rms / 2.0
        if self.protoplanets is None:
            self.protoplanets = default_protoplanets()

    def resolved_total_mass(self) -> float:
        """Target planetesimal ring mass [Msun]."""
        if self.total_mass is not None:
            return self.total_mass
        return HayashiNebula(exponent=self.surface_density_exponent).ring_mass(
            self.r_inner, self.r_outer
        )

    def mass_function(self) -> PowerLawMassFunction:
        """The paper's mass function rescaled to this particle count."""
        base = PowerLawMassFunction(self.mass_exponent, PAPER_MASS_LO, PAPER_MASS_HI)
        if self.n_planetesimals == PAPER_N_PLANETESIMALS and self.total_mass is None:
            return base
        total = self.resolved_total_mass()
        if self.mass_ratio_guard is not None and self.protoplanets:
            cap = self.mass_ratio_guard * min(p.mass for p in self.protoplanets)
            return base.constrained_to(self.n_planetesimals, total, cap)
        return base.scaled_to(self.n_planetesimals, total)


def sample_ring_radii(
    n: int,
    r_inner: float,
    r_outer: float,
    surface_density_exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample heliocentric distances from ``Sigma(r) ∝ r**exponent``.

    The radial number-density of a disk sample is
    ``p(r) ∝ r * Sigma(r) = r**(exponent+1)``; inversion of its CDF gives
    exact draws for any exponent.
    """
    if not (0.0 < r_inner < r_outer):
        raise ConfigurationError("need 0 < r_inner < r_outer")
    p = surface_density_exponent + 1.0  # p(r) ∝ r**p
    u = rng.random(n)
    if np.isclose(p, -1.0):
        return r_inner * (r_outer / r_inner) ** u
    q = p + 1.0
    return (r_inner**q + u * (r_outer**q - r_inner**q)) ** (1.0 / q)


def build_disk_system(config: PlanetesimalDiskConfig) -> ParticleSystem:
    """Construct the full initial :class:`ParticleSystem`.

    Planetesimals occupy rows ``0 .. n-1``; protoplanets (if any) follow.
    All particles start at ``t = 0``.
    """
    rng = np.random.default_rng(config.seed)
    n = config.n_planetesimals

    radii = sample_ring_radii(
        n, config.r_inner, config.r_outer, config.surface_density_exponent, rng
    )
    # Rayleigh(sigma) has RMS sqrt(2)*sigma; divide so e_rms is the RMS.
    ecc = rng.rayleigh(scale=config.e_rms / np.sqrt(2.0), size=n) if config.e_rms > 0 else np.zeros(n)
    inc = rng.rayleigh(scale=config.i_rms / np.sqrt(2.0), size=n) if config.i_rms > 0 else np.zeros(n)
    # Rayleigh tails can exceed 1 for absurd e_rms; clip defensively.
    ecc = np.clip(ecc, 0.0, 0.9)
    inc = np.clip(inc, 0.0, np.pi / 4.0)

    elements = OrbitalElements(
        a=radii,
        e=ecc,
        inc=inc,
        Omega=rng.uniform(0.0, 2.0 * np.pi, n),
        omega=rng.uniform(0.0, 2.0 * np.pi, n),
        M=rng.uniform(0.0, 2.0 * np.pi, n),
    )
    pos, vel = elements_to_cartesian(elements, mu=1.0)

    masses = config.mass_function().sample(n, rng)

    parts = [(masses, pos, vel)]
    if config.protoplanets:
        pm, pp, pv = protoplanet_states(config.protoplanets)
        parts.append((pm, pp, pv))

    mass_all = np.concatenate([p[0] for p in parts])
    pos_all = np.concatenate([p[1] for p in parts])
    vel_all = np.concatenate([p[2] for p in parts])
    return ParticleSystem(mass_all, pos_all, vel_all, time=0.0)
