"""Hayashi (1981) minimum-mass solar nebula model.

The paper normalises its planetesimal disk to the standard solar nebula
[Ha81]: solid surface density

.. math::

    \\Sigma(r) = \\Sigma_1 \\left(\\frac{r}{1\\,\\mathrm{AU}}\\right)^{-3/2},

with :math:`\\Sigma_1 \\approx 30\\ \\mathrm{g\\,cm^{-2}}` for ices beyond
the snow line (~2.7 AU).  This module converts that profile to code
units and integrates it over the ring to give the disk mass the
initial-condition generator targets.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..units import AU_IN_M, MSUN_IN_KG

__all__ = ["HayashiNebula", "ring_mass"]

#: Hayashi ice+rock surface density at 1 AU beyond the snow line [g/cm^2].
_SIGMA1_ICE_CGS = 30.0


def _cgs_surface_density_to_code(sigma_cgs: float) -> float:
    """g/cm^2 -> Msun/AU^2."""
    kg_per_m2 = sigma_cgs * 10.0  # 1 g/cm^2 = 10 kg/m^2
    return kg_per_m2 * AU_IN_M**2 / MSUN_IN_KG


class HayashiNebula:
    """Solid-component surface density of the minimum-mass nebula.

    Parameters
    ----------
    sigma1_cgs:
        Surface density of solids at 1 AU in g/cm^2 (default: the icy
        value 30, appropriate for the 15–35 AU region).
    exponent:
        Power-law slope (default -1.5, both Hayashi's and the paper's).
    enhancement:
        Multiplicative factor over minimum-mass (1 = MMSN).
    """

    def __init__(
        self,
        sigma1_cgs: float = _SIGMA1_ICE_CGS,
        exponent: float = -1.5,
        enhancement: float = 1.0,
    ) -> None:
        if sigma1_cgs <= 0 or enhancement <= 0:
            raise ConfigurationError("surface density must be positive")
        self.sigma1 = _cgs_surface_density_to_code(sigma1_cgs) * enhancement
        self.exponent = float(exponent)

    def surface_density(self, r: np.ndarray) -> np.ndarray:
        """Sigma(r) in Msun/AU^2 at heliocentric distance ``r`` [AU]."""
        r = np.asarray(r, dtype=np.float64)
        return self.sigma1 * r**self.exponent

    def ring_mass(self, r_in: float, r_out: float) -> float:
        """Total solid mass between ``r_in`` and ``r_out`` [Msun]."""
        return ring_mass(self.sigma1, self.exponent, r_in, r_out)


def ring_mass(sigma1: float, exponent: float, r_in: float, r_out: float) -> float:
    """Integrate ``2*pi*r*Sigma_1*r**exponent`` from ``r_in`` to ``r_out``.

    All lengths in AU, result in Msun (when ``sigma1`` is Msun/AU^2).
    """
    if not (0.0 < r_in < r_out):
        raise ConfigurationError("need 0 < r_in < r_out")
    p = exponent + 1.0
    if math.isclose(p, -1.0):
        integral = math.log(r_out / r_in)
    else:
        integral = (r_out ** (p + 1) - r_in ** (p + 1)) / (p + 1)
    return 2.0 * math.pi * sigma1 * integral
