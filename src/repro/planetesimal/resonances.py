"""Mean-motion resonances with the protoplanets.

The structure a massive protoplanet imprints on a planetesimal disk is
organised by mean-motion resonances (MMRs): locations where the orbital
periods form small-integer ratios.  The paper's Figure 13 gaps sit in
the feeding zone, but their edges and the exterior structure follow the
resonance ladder — this module locates it:

* :func:`resonance_semi_major_axis` — where the p:q MMR of a perturber
  at ``a_p`` sits (Kepler's third law: ``a = a_p (q/p)^(2/3)``);
* :func:`resonance_ladder` — all first- and second-order MMRs up to a
  given index, inside and outside the perturber;
* :func:`classify_resonant` — flag particles within a width of any
  ladder rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Resonance",
    "resonance_semi_major_axis",
    "resonance_ladder",
    "classify_resonant",
]


@dataclass(frozen=True)
class Resonance:
    """One mean-motion commensurability ``p:q`` of a perturber."""

    p: int  #: planetesimal completes q orbits while perturber does ... see name
    q: int
    a: float  #: semi-major axis of the resonance [AU]

    @property
    def name(self) -> str:
        return f"{self.p}:{self.q}"

    @property
    def order(self) -> int:
        return abs(self.p - self.q)

    @property
    def interior(self) -> bool:
        """True when the resonance lies inside the perturber's orbit."""
        return self.p > self.q


def resonance_semi_major_axis(p: int, q: int, a_perturber: float) -> float:
    """Location of the p:q resonance of a perturber at ``a_perturber``.

    Convention: a planetesimal in the p:q MMR completes ``p`` orbits
    while the perturber completes ``q`` (so p > q is interior, e.g. the
    2:1 interior resonance of a 30 AU perturber sits at 18.9 AU).
    """
    if p < 1 or q < 1:
        raise ConfigurationError("resonance integers must be positive")
    if p == q:
        raise ConfigurationError("p and q must differ (co-orbital is not an MMR)")
    if a_perturber <= 0:
        raise ConfigurationError("perturber semi-major axis must be positive")
    return a_perturber * (q / p) ** (2.0 / 3.0)


def resonance_ladder(
    a_perturber: float, max_index: int = 4, max_order: int = 2
) -> list[Resonance]:
    """First/second-order MMRs of one perturber, sorted by location.

    Includes ``(j+k):j`` interior and ``j:(j+k)`` exterior resonances
    for ``j <= max_index`` and ``k <= max_order``, deduplicated (4:2
    reduces to 2:1).
    """
    if max_index < 1 or max_order < 1:
        raise ConfigurationError("max_index and max_order must be >= 1")
    seen = set()
    rungs = []
    for j in range(1, max_index + 1):
        for k in range(1, max_order + 1):
            for p, q in ((j + k, j), (j, j + k)):
                frac = Fraction(p, q)
                if frac in seen:
                    continue
                seen.add(frac)
                rungs.append(
                    Resonance(p=p, q=q, a=resonance_semi_major_axis(p, q, a_perturber))
                )
    return sorted(rungs, key=lambda r: r.a)


def classify_resonant(
    a: np.ndarray,
    ladder: list[Resonance],
    width: float = 0.2,
) -> np.ndarray:
    """Index of the ladder rung each particle sits in (-1 if none).

    ``width`` is the half-width of each resonance band [AU] (a
    placeholder for the true libration width, which grows with
    perturber mass and eccentricity).
    """
    if width <= 0:
        raise ConfigurationError("width must be positive")
    a = np.asarray(a, dtype=np.float64)
    out = np.full(a.shape, -1, dtype=np.int64)
    locations = np.array([r.a for r in ladder])
    if locations.size == 0:
        return out
    dist = np.abs(a[:, None] - locations[None, :])
    best = np.argmin(dist, axis=1)
    hit = dist[np.arange(a.size), best] <= width
    out[hit] = best[hit]
    return out
