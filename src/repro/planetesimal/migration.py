"""Planetesimal-driven migration of the protoplanets.

The celebrated back-reaction of the paper's setup: when a protoplanet
scatters planetesimals, momentum conservation pushes its own orbit —
the mechanism behind Neptune's outward migration (Fernández & Ip 1984)
and, eventually, the Nice model.  The paper's production run is exactly
the kind of simulation this is measured in; this module provides the
measurement:

* :class:`MigrationTracker` — samples each protoplanet's osculating
  semi-major axis over a run and reports the drift ``da`` and a simple
  rate fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .orbital import cartesian_to_elements

__all__ = ["MigrationRecord", "MigrationTracker"]


@dataclass(frozen=True)
class MigrationRecord:
    """Drift summary for one protoplanet."""

    key: int
    a_initial: float
    a_final: float
    #: least-squares da/dt over the sampled series [AU per time unit]
    rate: float

    @property
    def da(self) -> float:
        return self.a_final - self.a_initial


class MigrationTracker:
    """Tracks protoplanet semi-major axes through a simulation.

    Parameters
    ----------
    keys:
        Particle keys of the protoplanets to follow (their keys survive
        mergers and removals).
    """

    def __init__(self, keys) -> None:
        self.keys = [int(k) for k in keys]
        if not self.keys:
            raise ConfigurationError("no protoplanet keys supplied")
        self.times: list[float] = []
        self.series: dict[int, list[float]] = {k: [] for k in self.keys}

    def sample(self, sim) -> dict[int, float]:
        """Record the current osculating a of every tracked body."""
        snap = sim.predicted_state()
        out = {}
        for k in self.keys:
            rows = np.nonzero(snap.key == k)[0]
            if rows.size == 0:
                raise ConfigurationError(f"tracked key {k} no longer in the system")
            row = int(rows[0])
            el = cartesian_to_elements(
                snap.pos[row : row + 1], snap.vel[row : row + 1]
            )
            a = float(el.a[0])
            self.series[k].append(a)
            out[k] = a
        self.times.append(float(sim.time))
        return out

    def record(self, key: int) -> MigrationRecord:
        """Drift summary of one tracked body."""
        key = int(key)
        if key not in self.series or len(self.series[key]) < 2:
            raise ConfigurationError("need at least two samples")
        t = np.asarray(self.times)
        a = np.asarray(self.series[key])
        rate = float(np.polyfit(t, a, 1)[0])
        return MigrationRecord(
            key=key, a_initial=float(a[0]), a_final=float(a[-1]), rate=rate
        )

    def records(self) -> list[MigrationRecord]:
        return [self.record(k) for k in self.keys]
