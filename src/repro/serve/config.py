"""Declarative scenario configs for campaign jobs.

A job is described by data, not code: a :class:`ScenarioConfig` is a
plain dict-round-trippable record naming the disk, the backend and the
run management knobs.  The worker process rebuilds the exact simulation
from it — the same contract the checkpoint ``config`` metadata uses for
``repro run --resume`` — so a job can be (re)executed by any worker on
any attempt and produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..errors import ConfigurationError

__all__ = ["ScenarioConfig", "build_backend", "load_campaign_spec"]

_BACKENDS = ("host", "grape", "tree", "hybrid")


def build_backend(name: str, eps: float = 0.008, theta: float = 0.5,
                  r_neighbour: float = 0.05):
    """Construct a force backend by name (shared by CLI and workers)."""
    if name == "host":
        from ..core import HostDirectBackend

        return HostDirectBackend(eps=eps)
    if name == "tree":
        from ..baselines import TreeBackend

        return TreeBackend(eps=eps, theta=theta)
    if name == "hybrid":
        from ..hybrid import HybridBackend

        return HybridBackend(eps=eps, theta=theta, r_neighbour=r_neighbour)
    if name == "grape":
        from ..grape import Grape6Backend, Grape6Config, Grape6Machine

        machine = Grape6Machine(Grape6Config.paper_full_system(), eps=eps)
        return Grape6Backend(machine)
    raise ConfigurationError(
        f"unknown backend {name!r} (want one of {', '.join(_BACKENDS)})"
    )


@dataclass
class ScenarioConfig:
    """Everything a worker needs to build and manage one run."""

    n: int = 64
    seed: int = 0
    t_end: float = 5.0
    backend: str = "host"
    eta: float = 0.02
    dt_max: float = 1.0
    eps: float = 0.008
    theta: float = 0.5
    r_neighbour: float = 0.05
    checkpoint_interval: int | None = 4
    snapshot_interval: float | None = None
    diagnostics_interval: float | None = None
    #: Test/chaos hooks interpreted by the worker (see repro.serve.worker).
    chaos: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError("scenario needs n >= 1 planetesimals")
        if self.t_end <= 0:
            raise ConfigurationError("scenario t_end must be positive")
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r} "
                f"(want one of {', '.join(_BACKENDS)})"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1 block")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario config keys: {sorted(unknown)}"
            )
        return cls(**data)

    def build_backend(self):
        return build_backend(
            self.backend, eps=self.eps, theta=self.theta,
            r_neighbour=self.r_neighbour,
        )

    def build_simulation(self, obs=None):
        """The initialised simulation this scenario describes."""
        from ..core import KeplerField, Simulation, TimestepParams
        from ..planetesimal import PlanetesimalDiskConfig, build_disk_system

        system = build_disk_system(
            PlanetesimalDiskConfig(n_planetesimals=self.n, seed=self.seed)
        )
        return Simulation(
            system,
            self.build_backend(),
            external_field=KeplerField(),
            timestep_params=TimestepParams(
                eta=self.eta, eta_start=self.eta / 2.0, dt_max=self.dt_max
            ),
            obs=obs,
        )


def load_campaign_spec(path) -> list[tuple[str, ScenarioConfig]]:
    """Parse a campaign spec file into ``[(tenant, scenario), ...]``.

    The spec is JSON::

        {"defaults": {"n": 24, "t_end": 2.0},
         "jobs": [{"tenant": "alice", "seed": 1},
                  {"tenant": "bob",   "seed": 2, "n": 48}]}

    Per-job keys override ``defaults``; ``tenant`` is required per job.
    """
    import json
    from pathlib import Path

    p = Path(path)
    if not p.exists():
        raise ConfigurationError(f"campaign spec not found: {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"corrupt campaign spec {p}: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("jobs"), list):
        raise ConfigurationError(
            f"{p} is not a campaign spec (want an object with a 'jobs' list)"
        )
    defaults = doc.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ConfigurationError(f"{p}: 'defaults' must be an object")
    jobs = []
    for i, entry in enumerate(doc["jobs"]):
        if not isinstance(entry, dict) or "tenant" not in entry:
            raise ConfigurationError(
                f"{p}: job #{i} must be an object with a 'tenant'"
            )
        merged = {**defaults, **entry}
        tenant = merged.pop("tenant")
        jobs.append((str(tenant), ScenarioConfig.from_dict(merged)))
    return jobs
