"""Fault-tolerant multi-tenant campaign service.

The production-scale half of the paper's story: the 29.5 Tflops run was
a long-lived campaign on hardware that loses chips and boards
mid-flight, and the host's job was to keep the pipeline fed anyway.
This package is that host-orchestration layer for *many* concurrent
runs: a journaled job orchestrator that survives worker death, hung
workers, poison jobs and its own death without losing a job.

The pieces:

* :mod:`~repro.serve.jobs` — the job model and its declared state
  machine (``queued -> leased -> running -> checkpointed -> done |
  failed | dead_lettered``), enforced at runtime and linted statically;
* :mod:`~repro.serve.journal` — crash-safe append-only JSONL journal,
  the service's write-ahead source of truth;
* :mod:`~repro.serve.retry` — bounded retries with exponential,
  deterministically jittered backoff and per-job timeouts;
* :mod:`~repro.serve.queue` — per-tenant fair queueing + token-based
  admission control (overload is *rejected*, not queued unboundedly);
* :mod:`~repro.serve.worker` — the process worker: rebuilds a run from
  its declarative config, heartbeats, resumes from checkpoints,
  publishes results idempotently;
* :mod:`~repro.serve.service` — :class:`CampaignService`, the
  orchestrator tying it together, with ``serve.*`` metrics through
  :mod:`repro.obs`.

See ``docs/SERVE.md`` for the architecture and failure-mode table.
"""

from .config import ScenarioConfig, build_backend, load_campaign_spec
from .jobs import LEGAL_TRANSITIONS, TERMINAL_STATES, Job, JobState
from .journal import JobJournal, JournalScan, scan_journal
from .queue import AdmissionLimiter, FairQueue
from .retry import RetryPolicy
from .service import CampaignReport, CampaignService, render_status
from .worker import execute_job, read_result, state_digest, worker_main

__all__ = [
    "ScenarioConfig",
    "build_backend",
    "load_campaign_spec",
    "Job",
    "JobState",
    "LEGAL_TRANSITIONS",
    "TERMINAL_STATES",
    "JobJournal",
    "JournalScan",
    "scan_journal",
    "AdmissionLimiter",
    "FairQueue",
    "RetryPolicy",
    "CampaignService",
    "CampaignReport",
    "render_status",
    "execute_job",
    "read_result",
    "state_digest",
    "worker_main",
]
