"""Crash-safe, append-only job journal (write-ahead JSONL).

The journal is the service's source of truth: every state transition is
appended *before* it is applied in memory, so killing the orchestrator
at any instant loses nothing — a recovery scan replays the file and
reconstructs every job at its last durable state.

Durability contract:

* records are single ``write()`` calls of one ``\\n``-terminated JSON
  object on an ``O_APPEND`` file, flushed (and ``fsync``\\ ed when
  ``fsync=True``, the default) before :meth:`JobJournal.append`
  returns;
* the recovery scan tolerates a torn final line (the crash happened
  mid-append: that transition never took effect) but refuses a corrupt
  line in the middle of the file, which indicates real damage;
* the journal is never rewritten in place.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ServeError

__all__ = ["JobJournal", "JournalScan", "scan_journal"]


@dataclass
class JournalScan:
    """Result of replaying a journal file."""

    #: job id -> submit record (first ``state=queued/rejected`` record).
    submits: dict[str, dict] = field(default_factory=dict)
    #: job id -> newest record seen for the job.
    latest: dict[str, dict] = field(default_factory=dict)
    #: every record, in file order (fairness audits, ``serve status``).
    records: list[dict] = field(default_factory=list)
    #: campaign header record, when present.
    header: dict | None = None
    #: whether a torn (truncated) final line was discarded.
    torn_tail: bool = False

    def states(self) -> dict[str, str]:
        """job id -> latest state value."""
        return {jid: rec.get("state", "?") for jid, rec in self.latest.items()}


def scan_journal(path) -> JournalScan:
    """Replay ``path``; raises :class:`ServeError` on mid-file corruption."""
    path = Path(path)
    scan = JournalScan()
    if not path.exists():
        return scan
    raw = path.read_bytes()
    if not raw:
        return scan
    lines = raw.split(b"\n")
    # a well-formed journal ends with a newline -> last element is b""
    tail_complete = lines[-1] == b""
    body = lines[:-1]
    tail = None if tail_complete else lines[-1]
    for i, line in enumerate(body):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"journal {path} is corrupt at line {i + 1}: {exc}"
            ) from exc
        _apply(scan, rec)
    if tail is not None:
        try:
            _apply(scan, json.loads(tail))
        except json.JSONDecodeError:
            scan.torn_tail = True  # crash mid-append: drop the tail
    return scan


def _apply(scan: JournalScan, rec: dict) -> None:
    kind = rec.get("kind")
    if kind == "campaign":
        if scan.header is None:
            scan.header = rec
        return
    if kind != "job":
        return
    jid = rec.get("id")
    if jid is None:
        return
    scan.records.append(rec)
    if jid not in scan.submits and rec.get("state") in ("queued", "rejected"):
        scan.submits.setdefault(jid, rec)
    scan.latest[jid] = rec


class JobJournal:
    """Appends job records to ``<path>`` with crash-safe semantics."""

    def __init__(self, path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        # O_APPEND: concurrent-safe single-writer appends, and a reopened
        # journal (orchestrator restart) continues the same file.
        self._fh = open(self.path, "a", encoding="utf-8")
        self.records_written = 0

    def append(self, record: dict) -> None:
        """Durably append one record (write + flush + optional fsync)."""
        if self._fh.closed:
            raise ServeError(f"journal {self.path} is closed")
        try:
            line = json.dumps(record, sort_keys=True)
        except TypeError as exc:
            raise ServeError(f"non-serialisable journal record: {exc}") from exc
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.records_written += 1

    def scan(self) -> JournalScan:
        return scan_journal(self.path)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
