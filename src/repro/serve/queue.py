"""Per-tenant fair queueing and token-based admission control.

Two cooperating pieces of graceful degradation:

* :class:`AdmissionLimiter` — a token pool consulted at submission.
  Every admitted job holds one global token (and one per-tenant token
  when a quota is set) until it reaches a terminal state.  When tokens
  run out the submission is **rejected** — a clear outcome the client
  can see and retry later, instead of an unbounded queue that hides the
  overload until memory or latency gives it away.

* :class:`FairQueue` — one FIFO per tenant, drained round-robin, so a
  tenant submitting 1000 jobs cannot starve a tenant submitting 10.
  Jobs carry a ``not_before`` stamp (retry backoff); a tenant whose
  head-of-line job is still backing off is skipped without blocking the
  rotation.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError
from .jobs import Job

__all__ = ["AdmissionLimiter", "FairQueue"]


class AdmissionLimiter:
    """Bounded token pool; submissions beyond capacity are shed."""

    def __init__(self, capacity: int, per_tenant: int | None = None) -> None:
        if capacity < 1:
            raise ConfigurationError("admission capacity must be >= 1")
        if per_tenant is not None and per_tenant < 1:
            raise ConfigurationError("per-tenant capacity must be >= 1")
        self.capacity = capacity
        self.per_tenant = per_tenant
        self._held = 0
        self._held_by: dict[str, int] = {}

    @property
    def available(self) -> int:
        return self.capacity - self._held

    def held_by(self, tenant: str) -> int:
        return self._held_by.get(tenant, 0)

    def try_acquire(self, tenant: str) -> bool:
        """Take one admission token for ``tenant``; False = shed load."""
        if self._held >= self.capacity:
            return False
        if (
            self.per_tenant is not None
            and self._held_by.get(tenant, 0) >= self.per_tenant
        ):
            return False
        self._held += 1
        self._held_by[tenant] = self._held_by.get(tenant, 0) + 1
        return True

    def force_acquire(self, tenant: str) -> None:
        """Take a token unconditionally (journal recovery re-admission).

        Jobs admitted by a previous orchestrator must keep their seats
        even if the service was restarted with a smaller capacity.
        """
        self._held += 1
        self._held_by[tenant] = self._held_by.get(tenant, 0) + 1

    def release(self, tenant: str) -> None:
        """Return the token of a job that reached a terminal state."""
        if self._held <= 0 or self._held_by.get(tenant, 0) <= 0:
            raise ConfigurationError(
                f"admission release without acquire (tenant {tenant!r})"
            )
        self._held -= 1
        self._held_by[tenant] -= 1


class FairQueue:
    """Round-robin-over-tenants FIFO of runnable jobs."""

    def __init__(self) -> None:
        self._queues: dict[str, deque[Job]] = {}
        self._rotation: deque[str] = deque()

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth_by_tenant(self) -> dict[str, int]:
        return {t: len(q) for t, q in self._queues.items() if q}

    def push(self, job: Job) -> None:
        """Enqueue ``job`` at its tenant's tail."""
        if job.tenant not in self._queues:
            self._queues[job.tenant] = deque()
            self._rotation.append(job.tenant)
        self._queues[job.tenant].append(job)

    def pop(self, now: float) -> Job | None:
        """Next runnable job in fair rotation, or None.

        Visits each tenant at most once per call; a tenant whose
        head-of-line job is backing off (``not_before > now``) keeps its
        queue order but yields its turn.
        """
        for _ in range(len(self._rotation)):
            tenant = self._rotation[0]
            self._rotation.rotate(-1)
            queue = self._queues.get(tenant)
            if not queue:
                continue
            if queue[0].not_before > now:
                continue
            return queue.popleft()
        return None

    def soonest_not_before(self, now: float) -> float | None:
        """Earliest ``not_before`` among currently blocked heads."""
        stamps = [
            q[0].not_before
            for q in self._queues.values()
            if q and q[0].not_before > now
        ]
        return min(stamps) if stamps else None
