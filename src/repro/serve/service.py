"""The fault-tolerant multi-tenant campaign orchestrator.

:class:`CampaignService` accepts declarative job submissions, executes
them on a bounded pool of process workers, and never loses a job:

* every state transition is journaled (write-ahead, fsync'd) before the
  service acts on it, so killing the orchestrator at any instant and
  constructing a new service on the same directory resumes the campaign
  — completed jobs stay completed, in-flight jobs are re-queued and
  their next attempt resumes from the last checkpoint;
* worker death is detected by process exit, hung workers by lease
  expiry (heartbeat mtime), and both feed the
  :class:`~repro.serve.retry.RetryPolicy` — bounded retries with
  exponential, deterministically jittered backoff, then the
  dead-letter queue;
* admission control (:class:`~repro.serve.queue.AdmissionLimiter`)
  sheds load with an explicit ``rejected`` outcome and the
  :class:`~repro.serve.queue.FairQueue` keeps tenants within a worker
  of each other instead of first-come-first-starve.

The service is single-threaded and non-blocking: :meth:`step` performs
one orchestration round (reap, relaunch, account) and returns the
number of outstanding jobs; :meth:`run` loops it to idleness.  Tests
drive :meth:`step` directly to interleave seeded worker kills.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ServeError
from .config import ScenarioConfig
from .jobs import TERMINAL_STATES, Job, JobState
from .journal import JobJournal, JournalScan, scan_journal
from .queue import AdmissionLimiter, FairQueue
from .retry import RetryPolicy
from .worker import ERROR_FILE, HEARTBEAT_FILE, read_result, worker_main

__all__ = ["CampaignService", "CampaignReport", "render_status"]

_TENANT_METRIC_RE = re.compile(r"[^a-z0-9_]")


@dataclass
class _Flight:
    """One live worker process and its lease bookkeeping."""

    job: Job
    proc: multiprocessing.Process
    started: float
    #: newest heartbeat wall-time the orchestrator has observed
    last_beat: float


@dataclass
class CampaignReport:
    """Final accounting of a campaign drained to idleness."""

    submitted: int
    rejected: int
    done: int
    dead_lettered: int
    retries: int
    lease_expiries: int
    lost: int
    wall_seconds: float
    done_by_tenant: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"campaign complete in {self.wall_seconds:.1f} s",
            f"  jobs: {self.submitted} submitted, {self.done} done, "
            f"{self.dead_lettered} dead-lettered, {self.rejected} rejected",
            f"  recovery: {self.retries} retries, "
            f"{self.lease_expiries} lease expiries, {self.lost} lost",
        ]
        if self.done_by_tenant:
            per = "  ".join(
                f"{t}={n}" for t, n in sorted(self.done_by_tenant.items())
            )
            lines.append(f"  per-tenant done: {per}")
        return "\n".join(lines)


class CampaignService:
    """Journaled multi-tenant job orchestrator over process workers.

    Parameters
    ----------
    directory:
        Campaign root: ``journal.jsonl`` plus one run directory per job
        under ``jobs/``.  Constructing a service on a directory with an
        existing journal **recovers** the campaign: terminal jobs are
        kept as-is, interrupted jobs are re-queued (their retry budget
        intact) and resume from their checkpoints.
    workers:
        Bounded worker-pool size (concurrent worker processes).
    retry:
        :class:`RetryPolicy` applied to failed attempts.
    capacity / per_tenant_capacity:
        Admission-limiter tokens: jobs admitted but not yet terminal.
        Submissions beyond either bound are *rejected*, not queued.
        ``capacity`` defaults to ``64 * workers``.
    lease_seconds:
        A running job whose heartbeat is older than this is considered
        hung; its worker is killed and the attempt fails.
    poll_interval:
        Sleep between :meth:`run` orchestration rounds.
    fsync:
        Fsync journal appends (disable only in tests that don't crash).
    """

    def __init__(
        self,
        directory,
        workers: int = 4,
        retry: RetryPolicy | None = None,
        capacity: int | None = None,
        per_tenant_capacity: int | None = None,
        lease_seconds: float = 10.0,
        poll_interval: float = 0.05,
        obs=None,
        fsync: bool = True,
        name: str = "campaign",
    ) -> None:
        from ..obs import NULL_OBS

        if workers < 1:
            raise ServeError("campaign service needs at least one worker")
        if lease_seconds <= 0:
            raise ServeError("lease_seconds must be positive")
        self.directory = Path(directory)
        self.jobs_dir = self.directory / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.obs = obs or NULL_OBS
        self.name = name

        self.limiter = AdmissionLimiter(
            capacity if capacity is not None else 64 * workers,
            per_tenant=per_tenant_capacity,
        )
        self.queue = FairQueue()
        self.jobs: dict[str, Job] = {}
        self._flights: dict[str, _Flight] = {}
        self._seq = 0
        self._started = time.time()
        self.retries = 0
        self.lease_expiries = 0

        if "fork" in multiprocessing.get_all_start_methods():
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-posix fallback
            self._ctx = multiprocessing.get_context()

        m = self.obs.metrics
        self._c_submitted = m.counter("serve.jobs_submitted_total")
        self._c_rejected = m.counter("serve.jobs_rejected_total")
        self._c_done = m.counter("serve.jobs_done_total")
        self._c_failed = m.counter("serve.attempts_failed_total")
        self._c_dead = m.counter("serve.jobs_dead_lettered_total")
        self._c_lost = m.counter("serve.jobs_lost_total")
        self._c_retries = m.counter("serve.retries_total")
        self._c_leases = m.counter("serve.leases_total")
        self._c_expiries = m.counter("serve.lease_expiries_total")
        self._c_deaths = m.counter("serve.worker_deaths_total")
        self._g_depth = m.gauge("serve.queue_depth")
        self._g_busy = m.gauge("serve.workers_busy")
        self._h_job_s = m.histogram("serve.job_seconds")

        fresh = not (self.directory / "journal.jsonl").exists()
        self.journal = JobJournal(self.directory / "journal.jsonl", fsync=fsync)
        if fresh:
            self.journal.append(
                {"kind": "campaign", "name": name, "workers": workers,
                 "ts": time.time()}
            )
        else:
            self._recover()

    # -- submission ------------------------------------------------------

    def submit(self, tenant: str, scenario: ScenarioConfig | dict,
               job_id: str | None = None) -> Job:
        """Admit (or reject) one job; returns it with its outcome state."""
        config = (
            scenario.to_dict()
            if isinstance(scenario, ScenarioConfig)
            else ScenarioConfig.from_dict(dict(scenario)).to_dict()
        )
        self._seq += 1
        if job_id is None:
            job_id = f"{tenant}-{self._seq:05d}"
        if job_id in self.jobs:
            raise ServeError(f"duplicate job id {job_id!r}")
        job = Job(job_id=job_id, tenant=tenant, config=config, seq=self._seq)
        if not self.limiter.try_acquire(tenant):
            job.state = JobState.REJECTED
            job.error = "admission limit reached"
            self._journal_job(job, reason="admission limit reached")
            self.jobs[job_id] = job
            self._c_rejected.inc()
            return job
        self.jobs[job_id] = job
        self._journal_job(job)  # the submit record (state=queued + config)
        self.queue.push(job)
        self._c_submitted.inc()
        self._g_depth.set(len(self.queue))
        return job

    # -- recovery --------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal and re-queue every interrupted job."""
        scan = self.journal.scan()
        for jid, submit in scan.submits.items():
            job = Job.from_records(submit, scan.latest[jid])
            self.jobs[jid] = job
            self._seq = max(self._seq, job.seq)
            if job.state is JobState.REJECTED:
                continue
            if job.state in TERMINAL_STATES:
                continue
            self.limiter.force_acquire(job.tenant)
            if job.state is JobState.FAILED:
                # crashed between journaling the failure and deciding:
                # apply the retry decision now
                self._decide_retry(job, now=time.time())
                continue
            if job.state is not JobState.QUEUED:
                # leased / running / checkpointed: the old orchestrator's
                # worker is gone; re-lease without burning an attempt
                job.transition(JobState.QUEUED)
                self._journal_job(job, reason="orchestrator restart")
            self.queue.push(job)
        self._g_depth.set(len(self.queue))

    # -- orchestration ---------------------------------------------------

    def step(self, now: float | None = None) -> int:
        """One orchestration round; returns outstanding job count."""
        now = time.time() if now is None else now
        self._reap(now)
        self._launch(now)
        self._g_depth.set(len(self.queue))
        self._g_busy.set(len(self._flights))
        return len(self.queue) + len(self._flights)

    def run(self, max_seconds: float | None = None) -> CampaignReport:
        """Drive :meth:`step` until the campaign is idle; blocking."""
        deadline = None if max_seconds is None else time.time() + max_seconds
        while True:
            outstanding = self.step()
            if outstanding == 0:
                break
            if deadline is not None and time.time() > deadline:
                raise ServeError(
                    f"campaign did not drain within {max_seconds} s "
                    f"({outstanding} jobs outstanding)"
                )
            time.sleep(self.poll_interval)
        return self.report()

    def _launch(self, now: float) -> None:
        while len(self._flights) < self.workers:
            job = self.queue.pop(now)
            if job is None:
                return
            job.transition(JobState.LEASED)
            self._journal_job(job)
            self._c_leases.inc()
            payload = {
                "job_id": job.job_id,
                "tenant": job.tenant,
                "attempt": job.attempt,
                "run_dir": str(self.run_dir(job.job_id)),
                "config": job.config,
            }
            try:
                proc = self._ctx.Process(
                    target=worker_main, args=(payload,), daemon=True
                )
                proc.start()
            except OSError as exc:  # pragma: no cover - resource exhaustion
                job.transition(JobState.FAILED, error=f"spawn failed: {exc}")
                self._journal_job(job)
                self._c_failed.inc()
                self._decide_retry(job, now)
                continue
            job.transition(JobState.RUNNING)
            self._journal_job(job)
            self._flights[job.job_id] = _Flight(
                job=job, proc=proc, started=now, last_beat=now
            )

    def _reap(self, now: float) -> None:
        for jid in list(self._flights):
            flight = self._flights[jid]
            job = flight.job
            if not flight.proc.is_alive():
                code = flight.proc.exitcode
                flight.proc.join()
                del self._flights[jid]
                if code == 0:
                    self._complete(job, now, flight)
                else:
                    if code is not None and code < 0:
                        self._c_deaths.inc()
                        reason = f"worker killed by signal {-code}"
                    else:
                        reason = self._worker_error(jid) or f"worker exit {code}"
                    self._fail_attempt(job, reason, now)
                continue
            self._observe_heartbeat(flight, job, now)
            deadline = max(flight.started, flight.last_beat) + self.lease_seconds
            timeout = self.retry.job_timeout
            if timeout is not None and now - flight.started > timeout:
                self._kill_flight(flight)
                del self._flights[jid]
                self._fail_attempt(
                    job, f"job timeout after {timeout:g} s", now
                )
            elif now > deadline:
                self.lease_expiries += 1
                self._c_expiries.inc()
                self._kill_flight(flight)
                del self._flights[jid]
                self._fail_attempt(job, "lease expired (hung worker)", now)

    def _observe_heartbeat(self, flight: _Flight, job: Job, now: float) -> None:
        hb = self.run_dir(job.job_id) / HEARTBEAT_FILE
        try:
            stat = hb.stat()
        except OSError:
            return
        if stat.st_mtime > flight.last_beat:
            flight.last_beat = stat.st_mtime
        if job.state is JobState.RUNNING:
            import json

            try:
                beat = json.loads(hb.read_text())
            except (OSError, ValueError):
                return
            if int(beat.get("checkpoints", 0)) > 0:
                job.checkpoints = int(beat["checkpoints"])
                job.transition(JobState.CHECKPOINTED)
                self._journal_job(job)

    def _complete(self, job: Job, now: float, flight: _Flight) -> None:
        result = read_result(self.run_dir(job.job_id))
        if result is None:
            self._fail_attempt(
                job, "worker exited cleanly without publishing a result", now
            )
            return
        job.result = result
        job.transition(JobState.DONE)
        self._journal_job(job)
        self.limiter.release(job.tenant)
        self._c_done.inc()
        self._h_job_s.observe(now - flight.started)
        tenant = _TENANT_METRIC_RE.sub("_", job.tenant.lower()) or "unknown"
        self.obs.metrics.counter(f"serve.tenant.{tenant}_done_total").inc()

    def _fail_attempt(self, job: Job, reason: str, now: float) -> None:
        job.transition(JobState.FAILED, error=reason)
        self._journal_job(job, reason=reason)
        self._c_failed.inc()
        self._decide_retry(job, now)

    def _decide_retry(self, job: Job, now: float) -> None:
        if self.retry.exhausted(job.attempt):
            job.transition(JobState.DEAD_LETTERED)
            self._journal_job(job, reason=f"retries exhausted: {job.error}")
            self.limiter.release(job.tenant)
            self._c_dead.inc()
            return
        delay = self.retry.delay(job.job_id, job.attempt)
        job.attempt += 1
        job.not_before = now + delay
        job.transition(JobState.QUEUED)
        self._journal_job(job, reason=f"retry in {delay:.3f} s")
        self.queue.push(job)
        self.retries += 1
        self._c_retries.inc()

    def _worker_error(self, job_id: str) -> str | None:
        """The failure message a worker published, if any."""
        path = self.run_dir(job_id) / ERROR_FILE
        try:
            text = path.read_text().strip()
        except OSError:
            return None
        return text or None

    def _kill_flight(self, flight: _Flight) -> None:
        proc = flight.proc
        if proc.pid is not None and proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - raced exit
                pass
        proc.join()

    # -- introspection ---------------------------------------------------

    def run_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def worker_pids(self) -> dict[str, int]:
        """job id -> live worker pid (fault-injection hooks in tests)."""
        return {
            jid: f.proc.pid
            for jid, f in self._flights.items()
            if f.proc.pid is not None and f.proc.is_alive()
        }

    def outstanding(self) -> int:
        return sum(1 for j in self.jobs.values() if not j.terminal)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for job in self.jobs.values():
            out[job.state.value] = out.get(job.state.value, 0) + 1
        return out

    def report(self) -> CampaignReport:
        """Final accounting; counts any non-terminal survivor as *lost*."""
        done_by_tenant: dict[str, int] = {}
        counts = {"done": 0, "dead_lettered": 0, "rejected": 0}
        lost = 0
        for job in self.jobs.values():
            if job.state is JobState.DONE:
                counts["done"] += 1
                done_by_tenant[job.tenant] = done_by_tenant.get(job.tenant, 0) + 1
            elif job.state is JobState.DEAD_LETTERED:
                counts["dead_lettered"] += 1
            elif job.state is JobState.REJECTED:
                counts["rejected"] += 1
            else:
                lost += 1
        if lost:
            self._c_lost.inc(lost)
        return CampaignReport(
            submitted=len(self.jobs) - counts["rejected"],
            rejected=counts["rejected"],
            done=counts["done"],
            dead_lettered=counts["dead_lettered"],
            retries=self.retries,
            lease_expiries=self.lease_expiries,
            lost=lost,
            wall_seconds=time.time() - self._started,
            done_by_tenant=done_by_tenant,
        )

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, kill_workers: bool = True) -> None:
        """Stop orchestrating; optionally SIGKILL live workers.

        The journal keeps every in-flight job at its last journaled
        state, so a later service on the same directory resumes them.
        """
        if kill_workers:
            for flight in self._flights.values():
                self._kill_flight(flight)
            self._flights.clear()
        self.journal.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- journal ---------------------------------------------------------

    def _journal_job(self, job: Job, reason: str | None = None) -> None:
        rec = {"kind": "job", "ts": time.time(), **job.to_record()}
        if job.state is JobState.QUEUED and len(job.history) == 0:
            # submit record: carries everything recovery needs
            rec["config"] = job.config
            rec["run_dir"] = str(self.run_dir(job.job_id))
        if reason is not None:
            rec["reason"] = reason
        self.journal.append(rec)


def render_status(scan: JournalScan, directory="") -> str:
    """Human status table from a journal scan (``repro serve status``)."""
    if not scan.latest:
        return f"no jobs journaled under {directory}"
    by_state: dict[str, int] = {}
    by_tenant: dict[str, dict[str, int]] = {}
    for rec in scan.latest.values():
        state = rec.get("state", "?")
        tenant = rec.get("tenant", "?")
        by_state[state] = by_state.get(state, 0) + 1
        per = by_tenant.setdefault(tenant, {})
        per[state] = per.get(state, 0) + 1
    name = (scan.header or {}).get("name", "campaign")
    lines = [f"campaign {name!r}: {len(scan.latest)} job(s)"]
    lines.append(
        "  states: "
        + "  ".join(f"{k}={v}" for k, v in sorted(by_state.items()))
    )
    for tenant in sorted(by_tenant):
        states = "  ".join(
            f"{k}={v}" for k, v in sorted(by_tenant[tenant].items())
        )
        lines.append(f"  {tenant:<12} {states}")
    dead = [
        rec for rec in scan.latest.values()
        if rec.get("state") == "dead_lettered"
    ]
    for rec in sorted(dead, key=lambda r: r.get("id", "")):
        lines.append(
            f"  dead-letter {rec.get('id')}: {rec.get('error', 'unknown')}"
        )
    if scan.torn_tail:
        lines.append("  (journal had a torn tail line — crash mid-append)")
    return "\n".join(lines)
