"""Retry policy: bounded attempts, exponential backoff, seeded jitter.

The schedule is **deterministic**: given the policy seed, a job id and
an attempt number, the backoff delay is a pure function — reproducing a
campaign reproduces its retry timing decisions.  Jitter is derived from
SHA-256 (stable across processes and Python versions, unlike ``hash``)
and decorrelates the retry storms of jobs that failed together.

After ``max_attempts`` failed attempts the decision becomes
``dead_letter``: the job is parked with its final error instead of
retrying forever (poison jobs must not wedge the pool).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Decides whether and when a failed job attempt is retried.

    Parameters
    ----------
    max_attempts:
        Total execution attempts a job gets before dead-lettering.
    base_delay:
        Backoff before the first retry (seconds).
    multiplier:
        Exponential growth factor of successive delays.
    max_delay:
        Cap on a single backoff delay (seconds).
    jitter:
        Fraction of the delay added as deterministic jitter in
        ``[0, jitter * delay)``; 0 disables jitter.
    job_timeout:
        Wall-clock cap on one attempt (seconds; None = no cap).  A
        timed-out worker is killed and the attempt counts as a failure.
    seed:
        Decorrelation seed for the jitter hash.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5
    job_timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ConfigurationError("job_timeout must be positive")

    # -- decisions -------------------------------------------------------

    def exhausted(self, attempt: int) -> bool:
        """True when ``attempt`` failures mean the job dead-letters."""
        return attempt >= self.max_attempts

    def delay(self, job_id: str, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        raw = self.base_delay * self.multiplier ** (attempt - 1)
        raw = min(raw, self.max_delay)
        return raw + self._jitter(job_id, attempt) * self.jitter * raw

    def schedule(self, job_id: str) -> list[float]:
        """All backoff delays the job could see (one per retry)."""
        return [
            self.delay(job_id, attempt)
            for attempt in range(1, self.max_attempts)
        ]

    def _jitter(self, job_id: str, attempt: int) -> float:
        """Deterministic uniform [0, 1) from (seed, job_id, attempt)."""
        digest = hashlib.sha256(
            f"{self.seed}:{job_id}:{attempt}".encode()
        ).digest()
        (value,) = struct.unpack_from("<Q", digest)
        return value / 2**64
