"""The process-based campaign worker.

One worker process executes one job attempt: rebuild the simulation
from the declarative :class:`~repro.serve.config.ScenarioConfig`,
run it under :class:`~repro.runio.driver.ProductionRun` with
checkpointing, and publish ``result.json`` atomically on completion.

Fault-tolerance contract with the orchestrator:

* **Heartbeat** — every block the worker rewrites ``heartbeat.json``
  in its run directory; the file's mtime renews the job lease.  A
  worker that dies (SIGKILL, OOM) stops heartbeating and its process
  exit is observed; a worker that *hangs* keeps the process alive but
  lets the lease expire, and is killed by the orchestrator.
* **Resume** — if the run directory already holds checkpoints the
  worker resumes from the newest valid one, so a retried attempt
  continues (bit-identically) instead of starting over.
* **Idempotence** — if ``result.json`` already exists the attempt
  reports success immediately.  This closes the window where a job
  finished but the orchestrator died before journaling ``done``: the
  re-leased attempt is a no-op.

Chaos hooks (``ScenarioConfig.chaos``, used by the fault-injection
tests in the spirit of :mod:`repro.resilience.faults`):

* ``fail_at_block`` / ``fail_attempts`` — raise at the given block
  while ``attempt <= fail_attempts`` (transient or poison failures);
* ``hang_at_block`` / ``hang_attempts`` — stop heartbeating and sleep
  (exercises lease expiry).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path

from ..errors import ReproError, ServeError
from .config import ScenarioConfig

__all__ = [
    "HEARTBEAT_FILE",
    "RESULT_FILE",
    "ERROR_FILE",
    "EXIT_DONE",
    "EXIT_FAILED",
    "execute_job",
    "worker_main",
    "state_digest",
    "read_result",
]

HEARTBEAT_FILE = "heartbeat.json"
RESULT_FILE = "result.json"
ERROR_FILE = "error.txt"

EXIT_DONE = 0
EXIT_FAILED = 3


def state_digest(system, t_final: float, block_steps: int) -> str:
    """SHA-256 fingerprint of a run's final dynamical state.

    Bit-identical runs — uninterrupted, or killed and resumed any
    number of times — produce the same digest.
    """
    h = hashlib.sha256()
    for name in ("mass", "pos", "vel", "t"):
        h.update(getattr(system, name).tobytes())
    h.update(f"{t_final!r}:{block_steps}".encode())
    return h.hexdigest()


def read_result(run_dir) -> dict | None:
    """The published result of a completed job, or None."""
    path = Path(run_dir) / RESULT_FILE
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None  # torn write can't happen (atomic publish); be safe


def _publish(path: Path, payload: dict) -> None:
    """Atomic JSON write: tmp + fsync + rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class _Heartbeat:
    """Per-block heartbeat + chaos hook evaluation."""

    def __init__(self, run_dir: Path, attempt: int, chaos: dict) -> None:
        self.run_dir = run_dir
        self.attempt = attempt
        self.chaos = chaos or {}
        self.blocks = 0
        self.run = None  # set after ProductionRun construction

    def __call__(self, sim) -> None:
        self.blocks += 1
        fail_at = self.chaos.get("fail_at_block")
        if fail_at is not None and self.blocks == int(fail_at):
            if self.attempt <= int(self.chaos.get("fail_attempts", 0)):
                raise ServeError(
                    f"chaos: injected failure at block {self.blocks} "
                    f"(attempt {self.attempt})"
                )
        hang_at = self.chaos.get("hang_at_block")
        if hang_at is not None and self.blocks == int(hang_at):
            if self.attempt <= int(self.chaos.get("hang_attempts", 0)):
                # stop heartbeating; the orchestrator's lease expires
                time.sleep(float(self.chaos.get("hang_seconds", 3600.0)))
        self.write(sim)

    def write(self, sim) -> None:
        payload = {
            "pid": os.getpid(),
            "attempt": self.attempt,
            "blocks": self.blocks,
            "checkpoints": (
                self.run.checkpoints_written if self.run is not None else 0
            ),
            "t": float(sim.time) if sim is not None else None,
        }
        tmp = self.run_dir / (HEARTBEAT_FILE + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.run_dir / HEARTBEAT_FILE)


def execute_job(payload: dict) -> dict:
    """Run one job attempt to completion; returns the result payload.

    ``payload`` carries ``job_id``, ``tenant``, ``attempt``,
    ``run_dir`` and the scenario ``config`` dict.  Raises
    :class:`ReproError` subclasses on failure.
    """
    from ..runio import ProductionRun

    run_dir = Path(payload["run_dir"])
    run_dir.mkdir(parents=True, exist_ok=True)
    attempt = int(payload.get("attempt", 1))
    config = ScenarioConfig.from_dict(payload["config"])

    existing = read_result(run_dir)
    if existing is not None:
        return existing  # a previous attempt finished; idempotent success
    (run_dir / ERROR_FILE).unlink(missing_ok=True)  # stale from last attempt

    heartbeat = _Heartbeat(run_dir, attempt, config.chaos)

    ckpt_dir = run_dir / "checkpoints"
    has_checkpoint = any(ckpt_dir.glob("ckpt_*.npz")) if ckpt_dir.is_dir() else False
    if has_checkpoint:
        run = ProductionRun.resume(
            run_dir,
            config.build_backend(),
            external_field=_kepler(),
            timestep_params=_timesteps(config),
            on_block=heartbeat,
        )
    else:
        run = ProductionRun(
            config.build_simulation(),
            run_dir,
            snapshot_interval=config.snapshot_interval,
            diagnostics_interval=config.diagnostics_interval,
            checkpoint_interval=config.checkpoint_interval,
            checkpoint_metadata={"job_id": payload["job_id"],
                                 **payload["config"]},
            run_id=payload["job_id"],
            on_block=heartbeat,
        )
    heartbeat.run = run
    heartbeat.write(run.sim)

    report = run.execute(None if has_checkpoint else config.t_end)
    result = {
        "job_id": payload["job_id"],
        "tenant": payload["tenant"],
        "attempt": attempt,
        "t_final": report.t_final,
        "block_steps": report.block_steps,
        "particle_steps": report.particle_steps,
        "n_final": report.n_final,
        "max_energy_error": report.max_energy_error,
        "checkpoints_written": report.checkpoints_written,
        "state_sha256": state_digest(
            run.sim.system, report.t_final, report.block_steps
        ),
    }
    _publish(run_dir / RESULT_FILE, result)
    return result


def _kepler():
    from ..core import KeplerField

    return KeplerField()


def _timesteps(config: ScenarioConfig):
    from ..core import TimestepParams

    return TimestepParams(
        eta=config.eta, eta_start=config.eta / 2.0, dt_max=config.dt_max
    )


def worker_main(payload: dict) -> None:
    """Process entry point: run the attempt, exit with a status code.

    The error message of a failed attempt is published to
    ``error.txt`` in the run directory so the orchestrator can journal
    a meaningful failure reason.
    """
    # many workers share the host: keep each one's kernel engine serial
    os.environ.setdefault("REPRO_KERNEL_THREADS", "1")
    run_dir = Path(payload["run_dir"])
    try:
        execute_job(payload)
    except ReproError as exc:
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / ERROR_FILE).write_text(f"{type(exc).__name__}: {exc}\n")
        sys.exit(EXIT_FAILED)
    except Exception as exc:  # noqa: BLE001 - worker boundary
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / ERROR_FILE).write_text(f"{type(exc).__name__}: {exc}\n")
        sys.exit(EXIT_FAILED)
    sys.exit(EXIT_DONE)
