"""Job model and state machine for the campaign service.

A *job* is one simulation request: a tenant, a declarative scenario
config, and a run directory.  Its lifecycle is an explicit state
machine::

    queued ──▶ leased ──▶ running ──▶ checkpointed ──▶ done
      ▲          │           │             │
      │◀─────────┘           ▼             ▼
      │                   failed ────▶ dead_lettered
      └──────────────────────┘
    (rejected is a submission outcome, not a transition)

Every transition the service performs goes through
:meth:`Job.transition`, which enforces :data:`LEGAL_TRANSITIONS` at
runtime; ``tools/check_job_states.py`` verifies statically that the
service source never requests an undeclared transition.

Design notes:

* ``leased/running/checkpointed → queued`` is the *re-lease* path — a
  lease returned without burning a retry attempt (orchestrator restart,
  worker that never started).  A worker *death* or *hang* instead goes
  through ``failed``, which consumes an attempt and consults the retry
  policy.
* ``checkpointed`` means the running job has durable progress on disk;
  when its worker later dies the next attempt resumes from that
  checkpoint instead of starting over (bit-identical, see
  :mod:`repro.resilience.checkpoint`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigurationError, JobStateError

__all__ = [
    "JobState",
    "LEGAL_TRANSITIONS",
    "TERMINAL_STATES",
    "Job",
]


class JobState(Enum):
    """Lifecycle states of a campaign job."""

    QUEUED = "queued"
    LEASED = "leased"
    RUNNING = "running"
    CHECKPOINTED = "checkpointed"
    DONE = "done"
    FAILED = "failed"
    DEAD_LETTERED = "dead_lettered"
    REJECTED = "rejected"


#: The declared legal transition table — single source of truth for the
#: state machine (``tools/check_job_states.py`` lints the service
#: source against it).  Initial states are QUEUED (admitted) and
#: REJECTED (shed by the admission limiter); terminal states have no
#: outgoing edges.
LEGAL_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset({JobState.LEASED}),
    JobState.LEASED: frozenset(
        {JobState.RUNNING, JobState.QUEUED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.CHECKPOINTED, JobState.DONE, JobState.FAILED, JobState.QUEUED}
    ),
    JobState.CHECKPOINTED: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.QUEUED}
    ),
    JobState.FAILED: frozenset({JobState.QUEUED, JobState.DEAD_LETTERED}),
    JobState.DONE: frozenset(),
    JobState.DEAD_LETTERED: frozenset(),
    JobState.REJECTED: frozenset(),
}

#: States a job never leaves (exactly one terminal record per job).
TERMINAL_STATES: frozenset[JobState] = frozenset(
    {JobState.DONE, JobState.DEAD_LETTERED, JobState.REJECTED}
)

_JOB_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class Job:
    """One campaign job and its mutable orchestration state."""

    job_id: str
    tenant: str
    config: dict
    state: JobState = JobState.QUEUED
    #: Retry attempt the next/current execution belongs to (1-based).
    attempt: int = 1
    #: Wall-clock time before which the job must not be leased (backoff).
    not_before: float = 0.0
    #: Last error string (worker exit, timeout, lease expiry reason).
    error: str | None = None
    #: Worker result payload once the job is done.
    result: dict | None = None
    #: Submission order, used for deterministic FIFO within a tenant.
    seq: int = 0
    checkpoints: int = 0
    history: list[JobState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not _JOB_ID_RE.match(self.job_id):
            raise ConfigurationError(
                f"job id {self.job_id!r} is not filesystem-safe "
                "(want [A-Za-z0-9][A-Za-z0-9._-]*)"
            )
        if not self.tenant or "/" in self.tenant:
            raise ConfigurationError(f"bad tenant name {self.tenant!r}")

    # -- state machine ---------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def can_transition(self, new: JobState) -> bool:
        return new in LEGAL_TRANSITIONS[self.state]

    def transition(self, new: JobState, error: str | None = None) -> JobState:
        """Move to ``new``; raises :class:`JobStateError` when illegal."""
        if not self.can_transition(new):
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        self.history.append(self.state)
        self.state = new
        if error is not None:
            self.error = error
        return new

    # -- journal round-trip ----------------------------------------------

    def to_record(self) -> dict:
        """The journal payload for the job's *current* state."""
        rec = {
            "id": self.job_id,
            "tenant": self.tenant,
            "state": self.state.value,
            "attempt": self.attempt,
            "seq": self.seq,
        }
        if self.error is not None:
            rec["error"] = self.error
        if self.result is not None:
            rec["result"] = self.result
        return rec

    @classmethod
    def from_records(cls, submit: dict, latest: dict) -> "Job":
        """Rebuild a job from its submit record + newest journal record."""
        job = cls(
            job_id=submit["id"],
            tenant=submit["tenant"],
            config=submit.get("config", {}),
            state=JobState(latest.get("state", "queued")),
            attempt=int(latest.get("attempt", 1)),
            seq=int(submit.get("seq", 0)),
        )
        job.error = latest.get("error")
        job.result = latest.get("result")
        return job
